#include "topk/reporters.h"

#include <algorithm>
#include <cassert>

namespace ltc {
namespace {

// Heap memory comes off the top of a sketch-based budget; never let the
// sketch starve completely.
size_t SketchBudget(size_t memory_bytes, size_t k) {
  size_t heap_bytes = TopKHeap::MemoryBytes(k);
  return memory_bytes > heap_bytes + 64 ? memory_bytes - heap_bytes : 64;
}

std::vector<TopKEntry> HeapTopK(const TopKHeap& heap, size_t k) {
  std::vector<TopKEntry> out;
  for (const auto& entry : heap.SortedEntries()) {
    if (out.size() == k) break;
    out.push_back({entry.item, entry.value});
  }
  return out;
}

}  // namespace

std::string SketchKindName(SketchKind kind) {
  switch (kind) {
    case SketchKind::kCountMin:
      return "CM";
    case SketchKind::kCu:
      return "CU";
    case SketchKind::kCount:
      return "Count";
  }
  return "?";
}

// --------------------------------------------------------------------- LTC

LtcConfig LtcReporter::Paced(LtcConfig config, uint32_t num_periods,
                             double duration) {
  config.period_mode = PeriodMode::kTimeBased;
  config.period_seconds = duration / num_periods;
  return config;
}

LtcReporter::LtcReporter(const LtcConfig& config, uint32_t num_periods,
                         double duration)
    : ltc_(Paced(config, num_periods, duration)) {}

void LtcReporter::Insert(ItemId item, double time, uint32_t) {
  ltc_.Insert(item, time);
}

std::vector<TopKEntry> LtcReporter::TopK(size_t k) const {
  std::vector<TopKEntry> out;
  for (const auto& report : ltc_.TopK(k)) {
    out.push_back({report.item, report.significance});
  }
  return out;
}

// ------------------------------------------------------- counter summaries

std::vector<TopKEntry> SpaceSavingReporter::TopK(size_t k) const {
  std::vector<TopKEntry> out;
  for (const auto& entry : ss_.TopK(k)) {
    out.push_back({entry.item, static_cast<double>(entry.count)});
  }
  return out;
}

LossyCountingReporter::LossyCountingReporter(size_t memory_bytes)
    // ε sized so the worst-case table (1/ε)·ln(εN) stays near the budget
    // for typical N; a hard entry cap enforces it regardless.
    : lc_(2.0 / static_cast<double>(LossyCounting::EntriesForMemory(
              memory_bytes)),
          LossyCounting::EntriesForMemory(memory_bytes)) {}

std::vector<TopKEntry> LossyCountingReporter::TopK(size_t k) const {
  std::vector<TopKEntry> out;
  for (const auto& entry : lc_.TopK(k)) {
    out.push_back({entry.item, static_cast<double>(entry.count + entry.delta)});
  }
  return out;
}

std::vector<TopKEntry> MisraGriesReporter::TopK(size_t k) const {
  std::vector<TopKEntry> out;
  for (const auto& entry : mg_.TopK(k)) {
    out.push_back({entry.item, static_cast<double>(entry.count)});
  }
  return out;
}

// ------------------------------------------------------- sketch + heap

SketchHeapFrequentReporter::SketchHeapFrequentReporter(SketchKind kind,
                                                       size_t memory_bytes,
                                                       size_t k,
                                                       uint32_t depth,
                                                       uint64_t seed)
    : kind_(kind), heap_(k) {
  size_t budget = SketchBudget(memory_bytes, k);
  switch (kind) {
    case SketchKind::kCountMin:
      counter_sketch_ = std::make_unique<CountMinSketch>(budget, depth, seed);
      break;
    case SketchKind::kCu:
      counter_sketch_ = std::make_unique<CuSketch>(budget, depth, seed);
      break;
    case SketchKind::kCount:
      count_sketch_ = std::make_unique<CountSketch>(budget, depth, seed);
      break;
  }
}

uint64_t SketchHeapFrequentReporter::SketchQuery(ItemId item) const {
  if (counter_sketch_) return counter_sketch_->Query(item);
  int64_t est = count_sketch_->Query(item);
  return est < 0 ? 0 : static_cast<uint64_t>(est);
}

void SketchHeapFrequentReporter::Insert(ItemId item, double, uint32_t) {
  if (counter_sketch_) {
    counter_sketch_->Insert(item);
  } else {
    count_sketch_->Insert(item);
  }
  heap_.Offer(item, static_cast<double>(SketchQuery(item)));
}

std::vector<TopKEntry> SketchHeapFrequentReporter::TopK(size_t k) const {
  return HeapTopK(heap_, k);
}

double SketchHeapFrequentReporter::Estimate(ItemId item) const {
  // Report the heap's tracked value when available (it reflects the
  // estimate at the item's last arrival); fall back to the sketch.
  if (heap_.Contains(item)) return heap_.ValueOf(item);
  return static_cast<double>(SketchQuery(item));
}

// ------------------------------------------------------- BF + sketch + heap

BfSketchPersistentReporter::BfSketchPersistentReporter(SketchKind kind,
                                                       size_t memory_bytes,
                                                       size_t k,
                                                       uint32_t depth,
                                                       uint64_t seed)
    : kind_(kind),
      bf_(std::max<size_t>(64, memory_bytes / 2 * 8),  // half budget, in bits
          4, seed ^ 0xb1f0),
      heap_(k) {
  size_t budget = SketchBudget(memory_bytes - memory_bytes / 2, k);
  switch (kind) {
    case SketchKind::kCountMin:
      counter_sketch_ = std::make_unique<CountMinSketch>(budget, depth, seed);
      break;
    case SketchKind::kCu:
      counter_sketch_ = std::make_unique<CuSketch>(budget, depth, seed);
      break;
    case SketchKind::kCount:
      count_sketch_ = std::make_unique<CountSketch>(budget, depth, seed);
      break;
  }
}

uint64_t BfSketchPersistentReporter::SketchQuery(ItemId item) const {
  if (counter_sketch_) return counter_sketch_->Query(item);
  int64_t est = count_sketch_->Query(item);
  return est < 0 ? 0 : static_cast<uint64_t>(est);
}

void BfSketchPersistentReporter::Insert(ItemId item, double, uint32_t period) {
  if (period != current_period_) {
    // New period: the dedup filter starts fresh (§II-B).
    bf_.Clear();
    current_period_ = period;
  }
  if (bf_.TestAndAdd(item)) return;  // already counted this period
  if (counter_sketch_) {
    counter_sketch_->Insert(item);
  } else {
    count_sketch_->Insert(item);
  }
  heap_.Offer(item, static_cast<double>(SketchQuery(item)));
}

std::vector<TopKEntry> BfSketchPersistentReporter::TopK(size_t k) const {
  return HeapTopK(heap_, k);
}

double BfSketchPersistentReporter::Estimate(ItemId item) const {
  if (heap_.Contains(item)) return heap_.ValueOf(item);
  return static_cast<double>(SketchQuery(item));
}

// ------------------------------------------------------- BF + SpaceSaving

std::vector<TopKEntry> BfSpaceSavingPersistentReporter::TopK(
    size_t k) const {
  std::vector<TopKEntry> out;
  for (const auto& entry : ss_.TopK(k)) {
    out.push_back({entry.item, static_cast<double>(entry.count)});
  }
  return out;
}

// ------------------------------------------------------- PIE

PieReporter::PieReporter(size_t memory_bytes_per_period, uint32_t num_periods,
                         uint64_t seed)
    : pie_(memory_bytes_per_period, num_periods, 3, seed) {}

void PieReporter::Finish() { decoded_ = pie_.DecodeAll(); }

std::vector<TopKEntry> PieReporter::TopK(size_t k) const {
  std::vector<Pie::Report> sorted = decoded_;
  std::sort(sorted.begin(), sorted.end(),
            [](const Pie::Report& a, const Pie::Report& b) {
              if (a.persistency != b.persistency) {
                return a.persistency > b.persistency;
              }
              return a.item < b.item;
            });
  if (sorted.size() > k) sorted.resize(k);
  std::vector<TopKEntry> out;
  for (const auto& report : sorted) {
    out.push_back({report.item, static_cast<double>(report.persistency)});
  }
  return out;
}

double PieReporter::Estimate(ItemId item) const {
  return static_cast<double>(pie_.EstimatePersistency(item));
}

// ------------------------------------------------------- two-structure combo

CombinedSignificantReporter::CombinedSignificantReporter(
    SketchKind kind, size_t memory_bytes, size_t k, double alpha, double beta,
    uint64_t seed)
    : kind_(kind),
      alpha_(alpha),
      beta_(beta),
      frequent_(kind, memory_bytes / 2, k, 3, seed),
      persistent_(kind, memory_bytes - memory_bytes / 2, k, 3, seed ^ 0x51) {}

void CombinedSignificantReporter::Insert(ItemId item, double time,
                                         uint32_t period) {
  frequent_.Insert(item, time, period);
  persistent_.Insert(item, time, period);
}

double CombinedSignificantReporter::Estimate(ItemId item) const {
  return alpha_ * frequent_.Estimate(item) +
         beta_ * persistent_.Estimate(item);
}

std::vector<TopKEntry> CombinedSignificantReporter::TopK(size_t k) const {
  // Candidates: anything either structure still tracks; scored by the
  // combined estimate.
  std::vector<TopKEntry> candidates;
  for (const auto& entry : frequent_.TopK(k)) {
    candidates.push_back({entry.item, Estimate(entry.item)});
  }
  for (const auto& entry : persistent_.TopK(k)) {
    bool seen = false;
    for (const auto& existing : candidates) {
      if (existing.item == entry.item) {
        seen = true;
        break;
      }
    }
    if (!seen) candidates.push_back({entry.item, Estimate(entry.item)});
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const TopKEntry& a, const TopKEntry& b) {
              if (a.estimate != b.estimate) return a.estimate > b.estimate;
              return a.item < b.item;
            });
  if (candidates.size() > k) candidates.resize(k);
  return candidates;
}

}  // namespace ltc
