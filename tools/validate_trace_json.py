#!/usr/bin/env python3
"""Validates Chrome trace-event JSON dumped by the LTC flight recorder
(docs/TELEMETRY.md "Tracing & flight recorder").

Usage: validate_trace_json.py [--require-cross-process] FILE [FILE...]

Checks the schema every dump must satisfy — complete-event ("ph":"X")
records with microsecond ts/dur, pid/tid, and hex trace/span/parent ids
under "args" — plus the otherData envelope. With
--require-cross-process, additionally asserts that at least one
trace_id appears under two or more distinct pids ACROSS the given
files: the end-to-end proof that trace-context propagation stitched a
pusher's delivery into the aggregator's merge. Exits non-zero on the
first violation; the CI trace-smoke step runs it on real dumps.
"""

import json
import re
import sys

HEX_ID_RE = re.compile(r"^0x[0-9a-f]{16}$")
# Span names are compile-time literals of the instrumented seams, so a
# dump full of garbage names means torn reads, not new instrumentation.
NAME_RE = re.compile(r"^[a-z_][a-z0-9_.]*$")


def fail(path, message):
    print(f"{path}: {message}", file=sys.stderr)
    sys.exit(1)


def check_event(event, path, index):
    where = f"traceEvents[{index}]"
    if not isinstance(event, dict):
        fail(path, f"{where} is not an object")
    name = event.get("name")
    if not isinstance(name, str) or not NAME_RE.match(name):
        fail(path, f"{where} has a bad name: {name!r}")
    if event.get("cat") != "ltc":
        fail(path, f"{where} cat != 'ltc'")
    if event.get("ph") != "X":
        fail(path, f"{where} ph != 'X' (complete events only)")
    for field in ("ts", "dur", "pid", "tid"):
        value = event.get(field)
        if not isinstance(value, int) or value < 0:
            fail(path, f"{where} field '{field}' is not a non-negative int")
    args = event.get("args")
    if not isinstance(args, dict):
        fail(path, f"{where} has no args object")
    for field in ("trace_id", "span_id", "parent_id"):
        value = args.get(field)
        if not isinstance(value, str) or not HEX_ID_RE.match(value):
            fail(path, f"{where} args.{field} is not a 0x%016x id: {value!r}")
    if args["trace_id"] == "0x" + "0" * 16:
        fail(path, f"{where} has a zero trace_id")
    if args["span_id"] == "0x" + "0" * 16:
        fail(path, f"{where} has a zero span_id")
    for key, value in args.items():
        if key in ("trace_id", "span_id", "parent_id"):
            continue
        if not isinstance(value, int):
            fail(path, f"{where} attr '{key}' is not an integer")
    return name, args["trace_id"], event["pid"]


def check_file(path, trace_pids):
    try:
        with open(path, encoding="utf-8") as handle:
            doc = json.load(handle)
    except (OSError, json.JSONDecodeError) as err:
        fail(path, f"unreadable or invalid JSON: {err}")
    if not isinstance(doc, dict):
        fail(path, "top level is not an object")
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        fail(path, "missing traceEvents array")
    other = doc.get("otherData")
    if not isinstance(other, dict):
        fail(path, "missing otherData envelope")
    for field in ("pid", "dropped_spans"):
        if not isinstance(other.get(field), int):
            fail(path, f"otherData.{field} is not an int")
    if not isinstance(other.get("truncated"), bool):
        fail(path, "otherData.truncated is not a bool")
    names = set()
    for index, event in enumerate(events):
        name, trace_id, pid = check_event(event, path, index)
        names.add(name)
        trace_pids.setdefault(trace_id, set()).add(pid)
    print(f"{path}: ok ({len(events)} events, {len(names)} span names, "
          f"dropped={other['dropped_spans']}, truncated={other['truncated']})")
    return len(events)


def main(argv):
    args = [a for a in argv[1:] if a != "--require-cross-process"]
    require_cross = len(args) != len(argv) - 1
    if not args:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    trace_pids = {}
    total = 0
    for path in args:
        total += check_file(path, trace_pids)
    if require_cross:
        linked = {t: pids for t, pids in trace_pids.items() if len(pids) >= 2}
        if not linked:
            print("no trace_id spans more than one pid — trace-context "
                  "propagation is broken", file=sys.stderr)
            return 1
        for trace_id, pids in sorted(linked.items()):
            print(f"cross-process trace {trace_id} spans pids "
                  f"{sorted(pids)}")
    if total == 0:
        print("no events in any file", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
