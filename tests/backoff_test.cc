// The retry/backoff layer, asserted deterministically: BackoffSchedule
// delay sequences (growth, cap, seeded jitter), the RetryWithBackoff
// driver on a FakeClock, and the two call sites that opt in —
// SnapshotStore::Save against FailpointFs fault bursts and
// IngestPipeline::Checkpoint. No test here sleeps real time.

#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/backoff.h"
#include "common/clock.h"
#include "core/sharded_ltc.h"
#include "ingest/ingest_pipeline.h"
#include "snapshot/failpoint_fs.h"
#include "snapshot/snapshot_store.h"
#include "telemetry/metrics.h"

namespace ltc {
namespace {

TEST(BackoffSchedule, GrowsExponentiallyAndCaps) {
  BackoffPolicy policy;
  policy.initial_delay_usec = 1'000;
  policy.multiplier = 2.0;
  policy.max_delay_usec = 5'000;
  BackoffSchedule schedule(policy);
  EXPECT_EQ(schedule.NextDelayUsec(), 1'000u);
  EXPECT_EQ(schedule.NextDelayUsec(), 2'000u);
  EXPECT_EQ(schedule.NextDelayUsec(), 4'000u);
  EXPECT_EQ(schedule.NextDelayUsec(), 5'000u);  // capped
  EXPECT_EQ(schedule.NextDelayUsec(), 5'000u);  // stays capped
}

TEST(BackoffSchedule, MultiplierBelowOneIsClampedToConstant) {
  BackoffPolicy policy;
  policy.initial_delay_usec = 700;
  policy.multiplier = 0.5;
  BackoffSchedule schedule(policy);
  EXPECT_EQ(schedule.NextDelayUsec(), 700u);
  EXPECT_EQ(schedule.NextDelayUsec(), 700u);
}

TEST(BackoffSchedule, JitterIsSeededAndBounded) {
  BackoffPolicy policy;
  policy.initial_delay_usec = 1'000;
  policy.multiplier = 2.0;
  policy.max_delay_usec = 64'000;
  policy.jitter = 0.25;
  policy.seed = 42;

  BackoffSchedule a(policy), b(policy);
  double base = 1'000.0;
  for (int i = 0; i < 8; ++i) {
    const uint64_t delay = a.NextDelayUsec();
    // Same policy, same seed: bit-identical schedules.
    EXPECT_EQ(delay, b.NextDelayUsec()) << "step " << i;
    // Each delay stays inside [1 - j, 1 + j] of the unjittered base.
    EXPECT_GE(delay, static_cast<uint64_t>(base * 0.75) - 1) << "step " << i;
    EXPECT_LE(delay, static_cast<uint64_t>(base * 1.25) + 1) << "step " << i;
    EXPECT_LE(delay, policy.max_delay_usec);
    base = std::min(base * 2.0, 64'000.0);
  }

  // A different seed lands a different schedule.
  BackoffPolicy reseeded = policy;
  reseeded.seed = 43;
  BackoffSchedule c(policy), d(reseeded);
  bool any_difference = false;
  for (int i = 0; i < 8; ++i) {
    if (c.NextDelayUsec() != d.NextDelayUsec()) any_difference = true;
  }
  EXPECT_TRUE(any_difference);
}

TEST(BackoffSchedule, ResetReplaysTheSchedule) {
  BackoffPolicy policy;
  policy.initial_delay_usec = 500;
  policy.jitter = 0.5;
  policy.seed = 7;
  BackoffSchedule schedule(policy);
  std::vector<uint64_t> first;
  for (int i = 0; i < 5; ++i) first.push_back(schedule.NextDelayUsec());
  schedule.Reset();
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(schedule.NextDelayUsec(), first[i]) << "step " << i;
  }
}

TEST(RetryWithBackoff, FirstTrySuccessSleepsNever) {
  BackoffPolicy policy;
  policy.max_attempts = 5;
  FakeClock clock;
  uint64_t retries = 0;
  int calls = 0;
  EXPECT_TRUE(RetryWithBackoff(
      policy, clock, [&] { return ++calls > 0; }, &retries));
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(retries, 0u);
  EXPECT_TRUE(clock.sleeps_usec().empty());
}

TEST(RetryWithBackoff, SleepsTheScheduleBetweenFailures) {
  BackoffPolicy policy;
  policy.max_attempts = 4;
  policy.initial_delay_usec = 1'000;
  policy.multiplier = 2.0;
  FakeClock clock;
  uint64_t retries = 0;
  int calls = 0;
  // Fails twice, succeeds on the third attempt.
  EXPECT_TRUE(RetryWithBackoff(
      policy, clock, [&] { return ++calls >= 3; }, &retries));
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(retries, 2u);
  ASSERT_EQ(clock.sleeps_usec().size(), 2u);
  EXPECT_EQ(clock.sleeps_usec()[0], 1'000u);
  EXPECT_EQ(clock.sleeps_usec()[1], 2'000u);
}

TEST(RetryWithBackoff, ExhaustionReturnsFalseAfterMaxAttempts) {
  BackoffPolicy policy;
  policy.max_attempts = 3;
  policy.initial_delay_usec = 10;
  FakeClock clock;
  uint64_t retries = 0;
  int calls = 0;
  EXPECT_FALSE(RetryWithBackoff(
      policy, clock,
      [&] {
        ++calls;
        return false;
      },
      &retries));
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(retries, 2u);  // re-attempts, not attempts
  EXPECT_EQ(clock.sleeps_usec().size(), 2u);
}

TEST(RetryWithBackoff, ZeroMaxAttemptsStillTriesOnce) {
  BackoffPolicy policy;
  policy.max_attempts = 0;
  FakeClock clock;
  int calls = 0;
  EXPECT_FALSE(RetryWithBackoff(policy, clock, [&] {
    ++calls;
    return false;
  }));
  EXPECT_EQ(calls, 1);
  EXPECT_TRUE(clock.sleeps_usec().empty());
}

// ------------------------------------------------------ SnapshotStore

class SnapshotRetryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = std::filesystem::path(::testing::TempDir()) /
           (std::string("backoff_") + info->name());
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
    base_ = (dir_ / "state").string();
  }

  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path dir_;
  std::string base_;
};

TEST_F(SnapshotRetryTest, SaveOutlastsAWriteErrorBurst) {
  FailpointFs fs(SystemFs());
  SnapshotStoreConfig config;
  config.retry.max_attempts = 3;
  config.retry.initial_delay_usec = 1'000;
  config.retry.multiplier = 2.0;
  FakeClock clock;
  SnapshotStore store(base_, config, &fs, &clock);
  telemetry::MetricsRegistry registry;
  store.AttachMetrics(&registry);

  // A disk that stays broken for the first two writes: attempts 1 and 2
  // fail, attempt 3 lands the snapshot.
  fs.Arm(FailpointFs::Failure::kWriteError, 0, /*seed=*/0, /*burst=*/2);
  std::string error;
  const auto seq = store.Save("payload", &error);
  ASSERT_TRUE(seq.has_value()) << error;
  EXPECT_EQ(store.SaveRetries(), 2u);
  // The backoff slept the exact deterministic schedule.
  ASSERT_EQ(clock.sleeps_usec().size(), 2u);
  EXPECT_EQ(clock.sleeps_usec()[0], 1'000u);
  EXPECT_EQ(clock.sleeps_usec()[1], 2'000u);
  EXPECT_EQ(registry
                .CounterOf("ltc_snapshot_save_retries_total", "")
                .Value(),
            2u);
  // And the snapshot is genuinely there.
  const auto recovered = store.LoadLatest(&error);
  ASSERT_TRUE(recovered.has_value()) << error;
  EXPECT_EQ(recovered->payload, "payload");
}

TEST_F(SnapshotRetryTest, DefaultPolicyStaysFailFast) {
  FailpointFs fs(SystemFs());
  FakeClock clock;
  SnapshotStore store(base_, {}, &fs, &clock);
  fs.Arm(FailpointFs::Failure::kWriteError, 0);
  std::string error;
  EXPECT_FALSE(store.Save("payload", &error).has_value());
  EXPECT_EQ(store.SaveRetries(), 0u);
  EXPECT_TRUE(clock.sleeps_usec().empty());
  // Nothing persisted, nothing retried: historical behaviour.
  EXPECT_TRUE(store.ListSnapshots().empty());
}

TEST_F(SnapshotRetryTest, ExhaustedRetriesStillFailTyped) {
  FailpointFs fs(SystemFs());
  SnapshotStoreConfig config;
  config.retry.max_attempts = 2;
  config.retry.initial_delay_usec = 50;
  FakeClock clock;
  SnapshotStore store(base_, config, &fs, &clock);
  fs.Arm(FailpointFs::Failure::kWriteError, 0, 0, /*burst=*/5);
  std::string error;
  EXPECT_FALSE(store.Save("payload", &error).has_value());
  EXPECT_FALSE(error.empty());
  EXPECT_EQ(store.SaveRetries(), 1u);
  EXPECT_TRUE(store.ListSnapshots().empty());
}

// ------------------------------------------------- pipeline checkpoint

TEST_F(SnapshotRetryTest, CheckpointRetriesThroughTransientSaveFailure) {
  LtcConfig sketch_config;
  sketch_config.memory_bytes = 16 * 1024;
  ShardedLtc sink(sketch_config, 2);

  FakeClock clock;
  IngestConfig config;
  config.checkpoint_retry.max_attempts = 3;
  config.checkpoint_retry.initial_delay_usec = 2'000;
  config.checkpoint_retry.multiplier = 2.0;
  config.clock = &clock;
  IngestPipeline pipeline(sink, config);

  FailpointFs fs(SystemFs());
  SnapshotStore store(base_, {}, &fs);  // store itself: fail-fast
  pipeline.AttachSnapshotStore(&store);

  std::vector<Record> records;
  for (ItemId i = 1; i <= 500; ++i) records.push_back({i, 0.001 * i});
  pipeline.PushBatch(records);

  // Two checkpoint attempts lose their save to the fault burst; the
  // third succeeds. The whole recovery happens under the pipeline's
  // backoff, invisible to the caller except in the retry counter.
  fs.Arm(FailpointFs::Failure::kWriteError, 0, 0, /*burst=*/2);
  std::string error;
  ASSERT_TRUE(pipeline.Checkpoint(&error)) << error;
  EXPECT_EQ(pipeline.CheckpointsTaken(), 1u);
  EXPECT_EQ(pipeline.CheckpointFailures(), 0u);
  EXPECT_EQ(pipeline.CheckpointRetries(), 2u);
  ASSERT_EQ(clock.sleeps_usec().size(), 2u);
  EXPECT_EQ(clock.sleeps_usec()[0], 2'000u);
  EXPECT_EQ(clock.sleeps_usec()[1], 4'000u);
  pipeline.Stop();

  EXPECT_EQ(store.ListSnapshots().size(), 1u);
}

TEST_F(SnapshotRetryTest, CheckpointDefaultStaysSingleAttempt) {
  LtcConfig sketch_config;
  sketch_config.memory_bytes = 16 * 1024;
  ShardedLtc sink(sketch_config, 2);
  IngestPipeline pipeline(sink, {});
  FailpointFs fs(SystemFs());
  SnapshotStore store(base_, {}, &fs);
  pipeline.AttachSnapshotStore(&store);
  pipeline.Push(7);

  fs.Arm(FailpointFs::Failure::kWriteError, 0);
  std::string error;
  EXPECT_FALSE(pipeline.Checkpoint(&error));
  EXPECT_EQ(pipeline.CheckpointFailures(), 1u);
  EXPECT_EQ(pipeline.CheckpointRetries(), 0u);
  pipeline.Stop();
}

}  // namespace
}  // namespace ltc
