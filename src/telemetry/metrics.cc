#include "telemetry/metrics.h"

#include <stdexcept>

namespace ltc {
namespace telemetry {
namespace {

bool ValidMetricName(const std::string& name) {
  if (name.empty()) return false;
  auto head = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
           c == ':';
  };
  if (!head(name[0])) return false;
  for (char c : name) {
    if (!head(c) && !(c >= '0' && c <= '9')) return false;
  }
  return true;
}

bool ValidLabelName(const std::string& name) {
  if (name.empty()) return false;
  auto head = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
  };
  if (!head(name[0])) return false;
  for (char c : name) {
    if (!head(c) && !(c >= '0' && c <= '9')) return false;
  }
  return true;
}

const char* KindName(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kHistogram:
      return "histogram";
  }
  return "?";
}

}  // namespace

MetricsRegistry::Family& MetricsRegistry::FamilyOf(const std::string& name,
                                                   const std::string& help,
                                                   MetricKind kind) {
  // Caller holds mutex_.
  for (auto& family : families_) {
    if (family->name == name) {
      if (family->kind != kind) {
        throw std::logic_error("MetricsRegistry: '" + name +
                               "' already registered as " +
                               KindName(family->kind) + ", requested " +
                               KindName(kind));
      }
      return *family;
    }
  }
  if (!ValidMetricName(name)) {
    throw std::invalid_argument("MetricsRegistry: bad metric name '" + name +
                                "'");
  }
  families_.push_back(std::make_unique<Family>());
  Family& family = *families_.back();
  family.name = name;
  family.help = help;
  family.kind = kind;
  return family;
}

MetricsRegistry::Series& MetricsRegistry::SeriesOf(Family& family,
                                                   Labels labels) {
  // Caller holds mutex_.
  for (auto& series : family.series) {
    if (series->labels == labels) return *series;
  }
  for (const auto& [label_name, value] : labels) {
    (void)value;
    if (!ValidLabelName(label_name)) {
      throw std::invalid_argument("MetricsRegistry: bad label name '" +
                                  label_name + "' on '" + family.name + "'");
    }
  }
  family.series.push_back(std::make_unique<Series>());
  Series& series = *family.series.back();
  series.labels = std::move(labels);
  switch (family.kind) {
    case MetricKind::kCounter:
      series.counter = std::make_unique<Counter>();
      break;
    case MetricKind::kGauge:
      series.gauge = std::make_unique<Gauge>();
      break;
    case MetricKind::kHistogram:
      series.histogram = std::make_unique<Histogram>();
      break;
  }
  return series;
}

Counter& MetricsRegistry::CounterOf(const std::string& name,
                                    const std::string& help, Labels labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  return *SeriesOf(FamilyOf(name, help, MetricKind::kCounter),
                   std::move(labels))
              .counter;
}

Gauge& MetricsRegistry::GaugeOf(const std::string& name,
                                const std::string& help, Labels labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  return *SeriesOf(FamilyOf(name, help, MetricKind::kGauge), std::move(labels))
              .gauge;
}

Histogram& MetricsRegistry::HistogramOf(const std::string& name,
                                        const std::string& help,
                                        Labels labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  return *SeriesOf(FamilyOf(name, help, MetricKind::kHistogram),
                   std::move(labels))
              .histogram;
}

}  // namespace telemetry
}  // namespace ltc
