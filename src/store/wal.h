// The write-ahead redo log of the paged sketch store
// (docs/DURABILITY.md "Paged store, WAL, and incremental checkpoints").
//
// Every Put() that changes pages appends exactly ONE record carrying
// all of that Put's dirty page images, then fsyncs — so a tenant
// update is atomic at the log level: after a crash the record is
// either wholly present (the Put is redone) or torn off the tail (the
// Put never happened). There is no state in between, which is what
// lets the kill-at-every-op sweep demand recovery be bit-identical to
// either the pre-Put or the post-Put sketch.
//
// Record layout (all integers little-endian):
//
//   offset  size  field
//   0       4     record magic "LWAL"
//   4       4     record format version (currently 1)
//   8       8     LSN
//   16      8     tenant id
//   24      8     body length in bytes
//   32      4     CRC-32 of the body
//   36      4     CRC-32 of the 36 header bytes above
//   40      —     body: u32 page-delta count, then per delta
//                 u32 page id + u64 payload length + payload bytes
//
// The reader walks records front to back and stops at the first frame
// that fails any check — short header, bad magic/version/CRC, short
// body. A torn tail is CLEAN END-OF-LOG, not an error: it is exactly
// what a crash mid-append (or FailpointFs::kTornWriteCrash) leaves
// behind, and recovery simply truncates there. A flipped byte anywhere
// in a record makes one of the CRCs fail, so corruption can hide
// records but never invent or alter one
// (tests/snapshot_corruption_test.cc sweeps every offset).

#ifndef LTC_STORE_WAL_H_
#define LTC_STORE_WAL_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "snapshot/frame.h"

namespace ltc {
namespace store {

constexpr size_t kWalRecordHeaderSize = 40;

/// One page's new image inside a record.
struct WalPageDelta {
  uint32_t page_id = 0;
  std::string payload;
};

/// One atomic tenant update: all pages a single Put changed.
struct WalRecord {
  uint64_t lsn = 0;
  uint64_t tenant = 0;
  std::vector<WalPageDelta> pages;
};

/// Serializes one record (header + body, both checksummed).
std::string EncodeWalRecord(const WalRecord& record);

struct WalDecodeResult {
  WalRecord record;
  /// Bytes the record occupied, when ok().
  size_t consumed = 0;
  SnapshotError error = SnapshotError::kNone;
  bool ok() const { return error == SnapshotError::kNone; }
};

/// Decodes the record at the front of `bytes`.
WalDecodeResult DecodeWalRecord(std::string_view bytes);

struct WalReadResult {
  std::vector<WalRecord> records;
  /// Bytes of intact records; everything past this is the torn tail.
  size_t valid_bytes = 0;
  /// True when trailing bytes were dropped (torn tail); the error that
  /// ended the walk is in `tail_error` for diagnostics.
  bool torn = false;
  SnapshotError tail_error = SnapshotError::kNone;
};

/// Walks the whole log, returning every intact record in append order.
WalReadResult ReadWalRecords(std::string_view log);

}  // namespace store
}  // namespace ltc

#endif  // LTC_STORE_WAL_H_
