#include "core/windowed_ltc.h"

#include <cassert>
#include <string>
#include <utility>

namespace ltc {
namespace {

LtcConfig MakePaneConfig(LtcConfig config) {
  assert(config.period_mode == PeriodMode::kTimeBased);
  config.memory_bytes /= 2;
  return config;
}

}  // namespace

WindowedLtc::WindowedLtc(const LtcConfig& config, uint32_t window_periods)
    : pane_config_(MakePaneConfig(config)),
      window_periods_(window_periods),
      pane_periods_((window_periods + 1) / 2),
      pane_span_(pane_config_.period_seconds *
                 static_cast<double>(pane_periods_)),
      active_(pane_config_),
      previous_(pane_config_) {
  assert(window_periods >= 2);
}

WindowedLtc::WindowedLtc(Ltc active, Ltc previous, uint32_t window_periods,
                         uint64_t current_pane, bool previous_live,
                         double last_time)
    : pane_config_(active.config()),
      window_periods_(window_periods),
      pane_periods_((window_periods + 1) / 2),
      pane_span_(pane_config_.period_seconds *
                 static_cast<double>(pane_periods_)),
      current_pane_(current_pane),
      active_(std::move(active)),
      previous_(std::move(previous)),
      previous_live_(previous_live),
      last_time_(last_time) {}

uint64_t WindowedLtc::PaneOf(double time) const {
  return static_cast<uint64_t>(time / pane_span_);
}

void WindowedLtc::Rotate(uint64_t pane_index) {
  if (pane_index == current_pane_ + 1) {
    // Adjacent pane: the active pane becomes the "previous" half of the
    // window. Finalize commits its pending period flags — it will only
    // be read from now on.
    active_.Finalize();
    previous_ = std::move(active_);
    previous_live_ = true;
  } else {
    // Jumped over at least one empty pane: nothing recent survives.
    previous_ = Ltc(pane_config_);
    previous_live_ = false;
  }
  active_ = Ltc(pane_config_);
#ifdef LTC_AUDIT
  active_.AttachAuditOracle(audit_oracle_);
#endif
  current_pane_ = pane_index;
}

void WindowedLtc::InsertBatch(std::span<const Record> records) {
  // Pane routing is inherently per-record (a rotation can fall anywhere
  // inside the batch), so the batch win here is only the virtual-call
  // amortization; the heavy lifting (prefetch, CLOCK stepping) lives in
  // the panes' own InsertBatch, reached one record at a time.
  for (const Record& record : records) InsertOne(record.item, record.time);
}

void WindowedLtc::InsertOne(ItemId item, double time) {
  // The window never moves backwards (same clamp as Ltc's time clock):
  // a regressing timestamp would otherwise rotate into a stale pane.
  if (time < last_time_) time = last_time_;
  last_time_ = time;
  uint64_t pane = PaneOf(time);
  if (pane != current_pane_) {
    Rotate(pane);
  }
  // Each pane's internal clock runs on pane-relative time so its CLOCK
  // sweep stays aligned with global periods regardless of rotation.
  // pane·pane_span_ exactly, so external mirrors of the pane arithmetic
  // (the differential harness) agree bit-for-bit.
  double pane_start = static_cast<double>(pane) * pane_span_;
  active_.Insert(item, time - pane_start);
#ifdef LTC_AUDIT
  if (PaneOf(last_time_) != current_pane_) {
    AuditFail("WindowedLtc", "pane-rotation",
              "pane of latest timestamp " + std::to_string(last_time_) +
                  " != current pane " + std::to_string(current_pane_));
  }
  if (!previous_.CheckInvariants()) {
    AuditFail("WindowedLtc", "structural",
              "previous pane invariants broken at pane " +
                  std::to_string(current_pane_));
  }
#endif
}

std::vector<Ltc::Report> WindowedLtc::TopK(size_t k) const {
  // Merge copies: time-partitioned panes make MergeFrom exact.
  Ltc combined = active_;
  combined.Finalize();
  if (previous_live_) {
    // Panes share one config, so the merge cannot be rejected.
    bool merged = combined.MergeFrom(previous_);
    (void)merged;
    assert(merged);
  }
  return combined.TopK(k);
}

double WindowedLtc::QuerySignificance(ItemId item) const {
  Ltc snapshot = active_;
  snapshot.Finalize();
  double total = snapshot.QuerySignificance(item);
  if (previous_live_) total += previous_.QuerySignificance(item);
  return total;
}

uint64_t WindowedLtc::EstimateFrequency(ItemId item) const {
  Ltc snapshot = active_;
  snapshot.Finalize();
  uint64_t total = snapshot.EstimateFrequency(item);
  if (previous_live_) total += previous_.EstimateFrequency(item);
  return total;
}

uint64_t WindowedLtc::EstimatePersistency(ItemId item) const {
  Ltc snapshot = active_;
  snapshot.Finalize();
  uint64_t total = snapshot.EstimatePersistency(item);
  if (previous_live_) total += previous_.EstimatePersistency(item);
  return total;
}

uint64_t WindowedLtc::WindowStartPeriod() const {
  if (!previous_live_ || current_pane_ == 0) {
    return current_pane_ * pane_periods_;
  }
  return (current_pane_ - 1) * pane_periods_;
}

bool WindowedLtc::CheckInvariants() const {
  if (window_periods_ < 2 || pane_periods_ == 0) return false;
  if (previous_live_ && current_pane_ == 0) return false;
  return active_.CheckInvariants() && previous_.CheckInvariants() &&
         active_.CanMergeWith(previous_);
}

namespace {
constexpr uint32_t kWindowedMagic = 0x574c5431;  // "WLT1"
// v2: explicit format version after the magic (v1 had none).
constexpr uint32_t kWindowedFormatVersion = 2;
}  // namespace

void WindowedLtc::Serialize(BinaryWriter& writer) const {
  PutVersionedMagic(writer, kWindowedMagic, kWindowedFormatVersion);
  writer.PutU32(window_periods_);
  writer.PutU64(current_pane_);
  writer.PutU8(previous_live_ ? 1 : 0);
  writer.PutDouble(last_time_);
  active_.Serialize(writer);
  previous_.Serialize(writer);
}

std::optional<WindowedLtc> WindowedLtc::Deserialize(BinaryReader& reader) {
  if (!CheckVersionedMagic(reader, kWindowedMagic, kWindowedFormatVersion)) {
    return std::nullopt;
  }
  uint32_t window_periods = reader.GetU32();
  uint64_t current_pane = reader.GetU64();
  bool previous_live = reader.GetU8() != 0;
  double last_time = reader.GetDouble();
  if (reader.failed() || window_periods < 2) return std::nullopt;
  auto active = Ltc::Deserialize(reader);
  if (!active) return std::nullopt;
  auto previous = Ltc::Deserialize(reader);
  if (!previous) return std::nullopt;
  if (active->config().period_mode != PeriodMode::kTimeBased) {
    return std::nullopt;
  }
  WindowedLtc window(std::move(*active), std::move(*previous),
                     window_periods, current_pane, previous_live, last_time);
  if (!window.CheckInvariants()) return std::nullopt;
  return window;
}

}  // namespace ltc
