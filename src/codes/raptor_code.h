// Raptor code (Shokrollahi, 2006) = sparse precode + LT inner code.
//
// PIE's original design uses Raptor codes; DESIGN.md §3 substitutes a
// plain LT code in the default build because the experiments only depend
// on the peeling threshold. This module closes the remaining fidelity
// gap: source blocks are first extended with parity blocks (each the XOR
// of a seeded sparse subset of sources — an LDPC-style precode), and the
// LT code runs over the intermediate (source + parity) blocks. At decode
// time the parity constraints join the peeling graph as zero-valued
// symbols, letting the decoder finish from symbol sets that stall a plain
// LT decoder — Raptor's defining property, covered by tests.

#ifndef LTC_CODES_RAPTOR_CODE_H_
#define LTC_CODES_RAPTOR_CODE_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "codes/lt_code.h"

namespace ltc {

class RaptorCode {
 public:
  /// \param num_source_blocks   K
  /// \param num_parity_blocks   P (0 degenerates to a plain LT code)
  /// \param seed                derives the parity connection pattern
  /// \param parity_degree       sources XORed into each parity block
  /// \param inner_max_degree    degree cap for the inner LT (0 = none);
  ///                            Raptor's classic configuration bounds it
  ///                            for O(1) encode and lets the precode
  ///                            recover the coverage the cap costs
  RaptorCode(uint32_t num_source_blocks, uint32_t num_parity_blocks,
             uint64_t seed = 0, uint32_t parity_degree = 3,
             uint32_t inner_max_degree = 0);

  /// Extends K source blocks to K+P intermediate blocks (source order
  /// preserved, parities appended). Encode many symbols from one Precode
  /// result — the precode is the expensive part.
  std::vector<uint64_t> Precode(const std::vector<uint64_t>& source) const;

  /// LT-encodes one symbol over the intermediate blocks.
  uint64_t EncodeIntermediate(const std::vector<uint64_t>& intermediate,
                              uint64_t symbol_seed) const;

  /// Convenience: Precode + EncodeIntermediate for a single symbol.
  uint64_t Encode(const std::vector<uint64_t>& source,
                  uint64_t symbol_seed) const;

  /// Decodes the K SOURCE blocks from received symbols plus the parity
  /// constraints; nullopt if even the augmented peeling stalls.
  std::optional<std::vector<uint64_t>> Decode(
      const std::vector<LtCode::Symbol>& symbols) const;

  /// The seeded source subset feeding parity block `p` (0-based).
  std::vector<uint32_t> ParityNeighbours(uint32_t parity_index) const;

  uint32_t num_source_blocks() const { return num_source_; }
  uint32_t num_parity_blocks() const { return num_parity_; }
  const LtCode& inner_code() const { return lt_; }

 private:
  uint32_t num_source_;
  uint32_t num_parity_;
  uint64_t seed_;
  uint32_t parity_degree_;
  LtCode lt_;  // over num_source_ + num_parity_ blocks
};

}  // namespace ltc

#endif  // LTC_CODES_RAPTOR_CODE_H_
