// Fig. 9 — precision on finding frequent items (§V-F), α=1 β=0:
// (a)–(c) precision vs memory 5–50 KB, k=100, on CAIDA / Network / Social;
// (d) precision vs k 100–1000 at 100 KB on Network.
// Suite: LTC, SS, LC, MG, CM, CU, Count (equal memory; sketches carry a
// size-k heap inside their budget).

#include "bench_common.h"

namespace ltc {
namespace bench {

void Run() {
  const std::vector<size_t> memories = {5, 10, 20, 30, 40, 50};

  const char* panels[] = {"(a) CAIDA", "(b) Network", "(c) Social"};
  auto datasets = LoadAllDatasets();
  for (size_t i = 0; i < datasets.size(); ++i) {
    auto bound_factory = [&](size_t memory_bytes, size_t k) {
      return FrequentSuite(memory_bytes, k, datasets[i].stream);
    };
    PrintFigure(std::string("Fig 9") + panels[i] +
                    ": precision vs memory, frequent items (k=100)",
                SweepMemory(datasets[i], memories, bound_factory, 100, 1.0,
                            0.0, Metric::kPrecision));
  }

  auto network_factory = [&](size_t memory_bytes, size_t k) {
    return FrequentSuite(memory_bytes, k, datasets[1].stream);
  };
  PrintFigure("Fig 9(d): precision vs k, frequent items (Network, 100KB)",
              SweepK(datasets[1], 100 * 1024, {100, 250, 500, 750, 1000},
                     network_factory, 1.0, 0.0, Metric::kPrecision));
}

}  // namespace bench
}  // namespace ltc

int main() { ltc::bench::Run(); }
