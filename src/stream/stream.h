// Stream model shared by every algorithm and benchmark in this library.
//
// Following the paper's setup (§V-B), a data stream is a time-ordered
// sequence of (item, timestamp) records divided into T equal-length
// periods. An item's *frequency* is its number of records; its
// *persistency* is the number of distinct periods containing at least one
// of its records; its *significance* is α·frequency + β·persistency (§I,
// Eq. 1).

#ifndef LTC_STREAM_STREAM_H_
#define LTC_STREAM_STREAM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ltc {

/// Item identifier. Datasets with string keys (usernames, URLs) are
/// interned to 64-bit IDs via StringInterner before processing.
using ItemId = uint64_t;

/// One stream element.
struct Record {
  ItemId item;
  double time;  // seconds from stream start; nondecreasing within a Stream
};

/// A finite prefix of a data stream, plus its period structure.
class Stream {
 public:
  Stream() = default;

  /// \param records      time-ordered records (asserted in debug builds)
  /// \param num_periods  T, the number of equal-length periods
  /// \param duration     total time span; period length = duration / T.
  ///                     Records at exactly `duration` are clamped into the
  ///                     last period.
  Stream(std::vector<Record> records, uint32_t num_periods, double duration);

  const std::vector<Record>& records() const { return records_; }
  uint32_t num_periods() const { return num_periods_; }
  double duration() const { return duration_; }
  double period_length() const { return duration_ / num_periods_; }
  size_t size() const { return records_.size(); }

  /// Maps a timestamp to its 0-based period index.
  uint32_t PeriodOf(double time) const {
    auto p = static_cast<uint32_t>(time / period_length());
    return p >= num_periods_ ? num_periods_ - 1 : p;
  }

  /// Number of distinct items (computed lazily on first call).
  size_t CountDistinct() const;

 private:
  std::vector<Record> records_;
  uint32_t num_periods_ = 1;
  double duration_ = 1.0;
  mutable size_t distinct_cache_ = 0;  // 0 = not yet computed
};

/// Builds a count-based stream: record i gets time i+0.5 so that a stream
/// of n records over T periods puts exactly n/T records in each period
/// (the paper's CAIDA setup, which uses the packet index as the
/// timestamp).
Stream MakeIndexedStream(std::vector<ItemId> items, uint32_t num_periods);

}  // namespace ltc

#endif  // LTC_STREAM_STREAM_H_
