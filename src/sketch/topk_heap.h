// Indexed min-heap tracking the k largest-valued items seen so far.
//
// Every "sketch + heap" top-k baseline in the paper (§II-A: "To report
// top-k frequent items, it needs to maintain a min-heap to record and
// update top-k frequent items") uses this structure: on each stream update
// the item's new estimate is offered; membership is O(1) via a hash index
// and reheapification is O(log k).

#ifndef LTC_SKETCH_TOPK_HEAP_H_
#define LTC_SKETCH_TOPK_HEAP_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "stream/stream.h"

namespace ltc {

class TopKHeap {
 public:
  struct Entry {
    ItemId item;
    double value;
  };

  explicit TopKHeap(size_t k);

  /// Offers (item, value). If the item is tracked, its value is updated
  /// (values may move either way); otherwise it is inserted when the heap
  /// has room or when value exceeds the current minimum, evicting it.
  /// Returns true if the item is tracked after the call.
  bool Offer(ItemId item, double value);

  bool Contains(ItemId item) const { return index_.count(item) > 0; }

  /// Value currently recorded for a tracked item; 0 for untracked items.
  double ValueOf(ItemId item) const;

  /// Smallest tracked value; 0 when empty.
  double MinValue() const { return heap_.empty() ? 0.0 : heap_[0].value; }

  bool Full() const { return heap_.size() == capacity_; }
  size_t size() const { return heap_.size(); }
  size_t capacity() const { return capacity_; }

  /// All tracked entries sorted by descending value (ties by item ID for
  /// determinism).
  std::vector<Entry> SortedEntries() const;

  /// Model memory: k slots of (ID, value) plus one index pointer per slot,
  /// matching how the paper charges heap memory against the budget.
  static size_t MemoryBytes(size_t k) { return k * 16; }

 private:
  void SiftUp(size_t pos);
  void SiftDown(size_t pos);
  void Place(size_t pos, Entry entry);

  size_t capacity_;
  std::vector<Entry> heap_;                      // min-heap by value
  std::unordered_map<ItemId, size_t> index_;     // item -> heap position
};

}  // namespace ltc

#endif  // LTC_SKETCH_TOPK_HEAP_H_
