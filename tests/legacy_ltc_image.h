// Test-only re-encoder for the legacy Ltc checkpoint format.
//
// v3 (current) stores the cell array lane-major (all ids, then all
// freqs, counters, flags — mirroring the SoA TableLayout); v2 stored it
// as a bucket-major array-of-structs, one (id, freq, counter, flags)
// tuple per cell. Production code only LOADS v2 (the shim in
// Ltc::Deserialize); this helper lets tests fabricate byte-exact v2
// images from a live table without a v2 writer surviving in src/.

#ifndef LTC_TESTS_LEGACY_LTC_IMAGE_H_
#define LTC_TESTS_LEGACY_LTC_IMAGE_H_

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/serial.h"

namespace ltc {
namespace testing_internal {

// Rewrites a v3 Ltc payload (as produced by Ltc::Serialize) into the v2
// AoS image of the same table. Every non-cell field is copied verbatim;
// only the version tag and the cell-array shape change.
inline std::string ReencodeLtcV3AsV2(const std::string& v3) {
  BinaryReader reader(v3);
  BinaryWriter writer;
  EXPECT_EQ(reader.GetU32(), 0x4c544331u);  // "LTC1"
  EXPECT_EQ(reader.GetU32(), 3u) << "expected a v3 payload";
  writer.PutU32(0x4c544331u);
  writer.PutU32(2);

  writer.PutU64(reader.GetU64());        // memory_bytes
  writer.PutU32(reader.GetU32());        // cells_per_bucket
  writer.PutDouble(reader.GetDouble());  // alpha
  writer.PutDouble(reader.GetDouble());  // beta
  for (int i = 0; i < 4; ++i) {          // ltr, init_policy, dev, mode
    writer.PutU8(reader.GetU8());
  }
  writer.PutU64(reader.GetU64());        // items_per_period
  writer.PutDouble(reader.GetDouble());  // period_seconds
  writer.PutU64(reader.GetU64());        // seed

  writer.PutU64(reader.GetU64());        // items_seen
  writer.PutU64(reader.GetU64());        // current_period
  writer.PutU64(reader.GetU64());        // scan_cursor
  writer.PutDouble(reader.GetDouble());  // last_time
  writer.PutU64(reader.GetU64());        // merged_history_periods

  const uint64_t m = reader.GetU64();
  writer.PutU64(m);
  std::vector<uint64_t> ids(m);
  std::vector<uint32_t> freqs(m);
  std::vector<uint32_t> counters(m);
  std::vector<uint8_t> flags(m);
  for (auto& v : ids) v = reader.GetU64();
  for (auto& v : freqs) v = reader.GetU32();
  for (auto& v : counters) v = reader.GetU32();
  for (auto& v : flags) v = reader.GetU8();
  EXPECT_FALSE(reader.failed());
  EXPECT_TRUE(reader.AtEnd()) << "trailing bytes after the v3 cell lanes";
  for (uint64_t i = 0; i < m; ++i) {
    writer.PutU64(ids[i]);
    writer.PutU32(freqs[i]);
    writer.PutU32(counters[i]);
    writer.PutU8(flags[i]);
  }
  return writer.data();
}

}  // namespace testing_internal
}  // namespace ltc

#endif  // LTC_TESTS_LEGACY_LTC_IMAGE_H_
