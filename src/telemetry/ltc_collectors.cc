#include "telemetry/ltc_collectors.h"

namespace ltc {
namespace telemetry {
namespace {

Labels WithCase(const Labels& labels, const char* case_name) {
  Labels out = labels;
  out.emplace_back("case", case_name);
  return out;
}

}  // namespace

void PublishLtcSink(MetricsRegistry& registry, const LtcMetricsSink& sink,
                    const Labels& labels, size_t num_cells) {
  registry
      .CounterOf("ltc_core_inserts_total",
                 "Arrivals by insert case (tracked / admitted / decremented)",
                 WithCase(labels, "tracked"))
      .SetFromSample(sink.inserts_tracked);
  registry
      .CounterOf("ltc_core_inserts_total",
                 "Arrivals by insert case (tracked / admitted / decremented)",
                 WithCase(labels, "admitted"))
      .SetFromSample(sink.inserts_admitted);
  registry
      .CounterOf("ltc_core_inserts_total",
                 "Arrivals by insert case (tracked / admitted / decremented)",
                 WithCase(labels, "decremented"))
      .SetFromSample(sink.inserts_decremented);
  registry
      .CounterOf("ltc_core_significance_decrements_total",
                 "Significance-decrement operations applied to minimum cells",
                 labels)
      .SetFromSample(sink.significance_decrements);
  registry
      .CounterOf("ltc_core_expulsions_total",
                 "Occupants expelled from their cell", labels)
      .SetFromSample(sink.expulsions);
  registry
      .CounterOf("ltc_core_longtail_replacements_total",
                 "Admissions initialized by Long-tail Replacement", labels)
      .SetFromSample(sink.longtail_replacements);
  registry
      .CounterOf("ltc_core_clock_steps_total",
                 "CLOCK slots scanned by the persistency sweep", labels)
      .SetFromSample(sink.clock_steps);
  registry
      .CounterOf("ltc_core_periods_total", "Periods completed by the CLOCK",
                 labels)
      .SetFromSample(sink.periods_completed);
  registry
      .GaugeOf("ltc_core_occupied_cells",
               "Non-empty cells sampled by the last completed sweep", labels)
      .Set(static_cast<double>(sink.occupied_cells));
  if (num_cells > 0) {
    registry
        .GaugeOf("ltc_core_occupancy_ratio",
                 "occupied_cells / total cells, from the last completed sweep",
                 labels)
        .Set(static_cast<double>(sink.occupied_cells) /
             static_cast<double>(num_cells));
  }
}

}  // namespace telemetry
}  // namespace ltc
