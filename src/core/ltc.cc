#include "core/ltc.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>
#include <string>

#include "common/bob_hash.h"
#include "common/hash.h"

// Hot-path metrics hooks (core/ltc_metrics_sink.h). Compiled only under
// LTC_METRICS so the zero-metrics build is the exact uninstrumented
// code; with the option on, each site is one predicted-not-taken branch
// until a sink is attached. bench_speed's sink-guard JSON measures both.
#ifdef LTC_METRICS
#define LTC_METRICS_HOOK(...)        \
  do {                               \
    if (metrics_ != nullptr) {       \
      __VA_ARGS__                    \
    }                                \
  } while (0)
#else
#define LTC_METRICS_HOOK(...) ((void)0)
#endif

namespace ltc {

std::optional<std::string> LtcConfig::Validate() const {
  if (cells_per_bucket == 0) return "cells_per_bucket must be >= 1";
  if (std::isnan(alpha) || alpha < 0.0) return "alpha must be >= 0";
  if (std::isnan(beta) || beta < 0.0) return "beta must be >= 0";
  if (alpha == 0.0 && beta == 0.0) {
    return "alpha and beta cannot both be 0";
  }
  if (period_mode == PeriodMode::kCountBased) {
    if (items_per_period == 0) return "items_per_period must be >= 1";
  } else {
    // !(x > 0) also rejects NaN.
    if (!(period_seconds > 0.0)) return "period_seconds must be > 0";
  }
  return std::nullopt;
}

Ltc::Ltc(const LtcConfig& config) : config_(config) {
  if (auto problem = config.Validate()) {
    throw std::invalid_argument("LtcConfig: " + *problem);
  }
  size_t w = config.memory_bytes /
             (LtcConfig::BytesPerCell() * config.cells_per_bucket);
  num_buckets_ = static_cast<uint32_t>(std::max<size_t>(1, w));
  table_ = TableLayout(num_buckets_, config.cells_per_bucket);
  ResetClockStepper();
}

uint32_t Ltc::BucketOf(ItemId item) const {
  return FastRange32(BobHash32(item, static_cast<uint32_t>(config_.seed)),
                     num_buckets_);
}

void Ltc::ResetClockStepper() {
  if (config_.period_mode != PeriodMode::kCountBased) return;
  const uint64_t m = table_.num_cells();
  const uint64_t n = config_.items_per_period;
  clock_step_div_ = m / n;
  clock_step_mod_ = m % n;
  clock_acc_ = (items_seen_ * m) % n;
  clock_target_ = items_seen_ * m / n;
}

uint8_t Ltc::CurrentFlagMask() const {
  if (!config_.deviation_eliminator) return 0x1;
  return static_cast<uint8_t>(1u << (current_period_ & 1));
}

uint8_t Ltc::ScanFlagMask() const {
  if (!config_.deviation_eliminator) return 0x1;
  // During period p the sweep credits the PREVIOUS period's flag (§III-C);
  // with parity flags that is the bit of opposite parity. In period 0 the
  // opposite-parity bit has never been set, so the sweep is a no-op, as it
  // should be.
  return static_cast<uint8_t>(1u << ((current_period_ & 1) ^ 1));
}

void Ltc::ScanCell(CellRef cell) {
  uint8_t mask = ScanFlagMask();
  if (cell.flags() & mask) {
    cell.set_counter(cell.counter() + 1);
    cell.set_flags(static_cast<uint8_t>(cell.flags() & ~mask));
  }
}

void Ltc::ScanTo(uint64_t target_slot) {
  assert(target_slot <= table_.num_cells());
#ifdef LTC_METRICS
  // Instrumented sweep, hoisted into its own loop: the null check runs
  // once per ScanTo, not once per scanned cell, so the detached path is
  // the plain loop below. Occupancy sampling rides the sweep for free —
  // every period visits all m slots exactly once, so the scratch total
  // at the period boundary is a full occupancy sample.
  if (metrics_ != nullptr && target_slot > scan_cursor_) {
    metrics_->clock_steps += target_slot - scan_cursor_;
    uint64_t occupied = 0;  // local accumulator: no store per cell
    for (; scan_cursor_ < target_slot; ++scan_cursor_) {
      CellRef cell = table_.cell(scan_cursor_);
      ScanCell(cell);
      // Integer-only occupancy test: IsEmpty() recomputes significance
      // with two FP multiplies per cell, which would dominate the sweep.
      occupied += static_cast<uint64_t>(
          (cell.id() | cell.freq() | cell.counter()) != 0);
    }
    metrics_->scan_occupied_scratch += occupied;
    return;
  }
#endif
  for (; scan_cursor_ < target_slot; ++scan_cursor_) {
    ScanCell(table_.cell(scan_cursor_));
  }
}

void Ltc::AdvanceTimeClock(double time) {
  assert(config_.period_mode == PeriodMode::kTimeBased);
  const uint64_t m = table_.num_cells();
  // Time-based (§III-B "when the period is defined by time"): the pointer
  // tracks absolute time, so an arrival gap of (x−y) advances it by
  // (x−y)/t·m slots, completing full sweeps over any skipped periods.
  // The clock never runs backwards: a regressing timestamp is clamped to
  // the latest one seen (pinned by period_edge_test; previously this was
  // an assert, which release builds skipped right into a negative-offset
  // cast).
  if (time < last_time_) time = last_time_;
  last_time_ = time;
  const double t = config_.period_seconds;
  while (time >= (static_cast<double>(current_period_) + 1.0) * t) {
    ScanTo(m);
    scan_cursor_ = 0;
    ++current_period_;
    LTC_METRICS_HOOK(
        ++metrics_->periods_completed;
        metrics_->occupied_cells = metrics_->scan_occupied_scratch;
        metrics_->scan_occupied_scratch = 0;);
  }
  double offset = time - static_cast<double>(current_period_) * t;
  auto target = static_cast<uint64_t>(offset / t * static_cast<double>(m));
  ScanTo(std::min(target, m));
}

void Ltc::PlaceItem(BucketView bucket, uint32_t cell_index, ItemId item) {
  uint32_t init_freq = 1;
  uint32_t init_counter = 0;
  switch (config_.EffectiveInitPolicy()) {
    case InitPolicy::kOne:
    case InitPolicy::kMinPlusOne:  // handled in UpdateBucket; unreachable
      break;
    case InitPolicy::kLongTail: {
      // Long-tail Replacement (§III-D): the expelled minimum's true value
      // is approximately the bucket's (old) second-smallest value − 1, so
      // the newcomer — which in Case I earned its slot by arriving that
      // many times — starts there instead of at 1.
      uint32_t min_freq = 0;
      uint32_t min_counter = 0;
      bool have_other = false;
      const uint32_t d = bucket.size();
      for (uint32_t i = 0; i < d; ++i) {
        if (i == cell_index) continue;
        ConstCellRef other = bucket.cell(i);
        if (IsEmpty(other)) continue;
        if (!have_other) {
          min_freq = other.freq();
          min_counter = other.counter();
          have_other = true;
        } else {
          min_freq = std::min(min_freq, other.freq());
          min_counter = std::min(min_counter, other.counter());
        }
      }
      if (have_other) {
        init_freq = min_freq > 1 ? min_freq - 1 : 1;
        init_counter = min_counter > 0 ? min_counter - 1 : 0;
        LTC_METRICS_HOOK(++metrics_->longtail_replacements;);
      }
      break;
    }
  }
  CellRef cell = bucket.cell(cell_index);
  cell.set_id(item);
  cell.set_freq(init_freq);
  cell.set_counter(init_counter);
  cell.set_flags(CurrentFlagMask());
}

void Ltc::UpdateBucket(ItemId item, uint32_t bucket_index) {
  assert(item != 0 && "ItemId 0 is reserved for empty cells");
  assert(bucket_index == BucketOf(item));
  BucketView bucket = table_.bucket(bucket_index);
  // The hot probe: one vector compare of the arriving ID (and the empty
  // marker) against the bucket's contiguous ID lane. ID zero is the
  // reserved empty marker and empty cells are fully zeroed (structural
  // invariant), so the ID-only compare is exactly the old
  // "id == item && !IsEmpty" / "IsEmpty" pair.
  const BucketProbe probe = bucket.Probe(item);

  if (probe.match >= 0) {
    // Case 1: tracked — bump frequency, mark "appeared this period".
    CellRef cell = bucket.cell(static_cast<uint32_t>(probe.match));
    cell.set_freq(cell.freq() + 1);
    cell.set_flags(static_cast<uint8_t>(cell.flags() | CurrentFlagMask()));
    LTC_METRICS_HOOK(++metrics_->inserts_tracked;);
  } else if (probe.empty >= 0) {
    // Case 2: free slot — admit with initial values (1, 0).
    CellRef cell = bucket.cell(static_cast<uint32_t>(probe.empty));
    cell.set_id(item);
    cell.set_freq(1);
    cell.set_counter(0);
    cell.set_flags(CurrentFlagMask());
    LTC_METRICS_HOOK(++metrics_->inserts_admitted;);
  } else {
    // Case 3: full bucket — Significance Decrementing on the smallest
    // cell; the newcomer is admitted only if that empties it. The FP
    // significance min-scan stays scalar: it runs only on the full-bucket
    // path, and its compare order must match the AoS seed bit-for-bit.
    const uint32_t d = bucket.size();
    uint32_t smallest = 0;
    double smallest_sig = SignificanceOf(bucket.cell(0));
    for (uint32_t i = 1; i < d; ++i) {
      double sig = SignificanceOf(bucket.cell(i));
      if (sig < smallest_sig) {
        smallest_sig = sig;
        smallest = i;
      }
    }
    CellRef cell = bucket.cell(smallest);
    LTC_METRICS_HOOK(++metrics_->inserts_decremented;);
    if (config_.EffectiveInitPolicy() == InitPolicy::kMinPlusOne) {
      // Space-Saving's takeover (§I): no decrementing — the newcomer
      // replaces the minimum outright and inherits its value + 1.
      cell.set_id(item);
      cell.set_freq(cell.freq() + 1);
      cell.set_flags(CurrentFlagMask());
      LTC_METRICS_HOOK(++metrics_->expulsions;);
    } else {
      LTC_METRICS_HOOK(++metrics_->significance_decrements;);
      if (cell.counter() > 0) cell.set_counter(cell.counter() - 1);
      if (cell.freq() > 0) cell.set_freq(cell.freq() - 1);
      if (SignificanceOf(cell) == 0.0) {
        LTC_METRICS_HOOK(++metrics_->expulsions;);
        cell.Clear();
        PlaceItem(bucket, smallest, item);
      }
    }
  }
}

void Ltc::InsertBatch(std::span<const Record> records) {
  // Must leave the table in exactly the state one bucket-update plus
  // clock-advance per record would (pinned by tests/ingest_pipeline_test
  // and the differential oracle): same bucket updates, same clock
  // advances, in the same order. The wins over a naive loop: the
  // pacing-mode branch runs once per batch, the count-based CLOCK step
  // is an incremental add (ResetClockStepper documents the invariant),
  // and each record's routed bucket is prefetched kPrefetchAhead records
  // before its probe issues — the batch already knows the next hashes,
  // so the bucket lanes are warm when the vector compare needs them.
  // Each item is hashed exactly once (the ring carries the result).
  const size_t count = records.size();
  if (count == 0) return;

  constexpr size_t kPrefetchAhead = 8;
  uint32_t bucket_ring[kPrefetchAhead];
  const size_t ahead = std::min(kPrefetchAhead, count);
  for (size_t i = 0; i < ahead; ++i) {
    bucket_ring[i] = BucketOf(records[i].item);
    table_.PrefetchBucket(bucket_ring[i]);
  }

  if (config_.period_mode == PeriodMode::kTimeBased) {
    for (size_t i = 0; i < count; ++i) {
      const uint32_t bucket = bucket_ring[i % kPrefetchAhead];
      if (i + ahead < count) {
        const uint32_t next = BucketOf(records[i + ahead].item);
        bucket_ring[(i + ahead) % kPrefetchAhead] = next;
        table_.PrefetchBucket(next);
      }
      // Settle the clock first so the flag lands in this arrival's period.
      AdvanceTimeClock(records[i].time);
      UpdateBucket(records[i].item, bucket);
#ifdef LTC_AUDIT
      AuditAfterInsert(records[i].item);
#endif
    }
    return;
  }

  const uint64_t m = table_.num_cells();
  const uint64_t n = config_.items_per_period;
  for (size_t i = 0; i < count; ++i) {
    const uint32_t bucket = bucket_ring[i % kPrefetchAhead];
    if (i + ahead < count) {
      const uint32_t next = BucketOf(records[i + ahead].item);
      bucket_ring[(i + ahead) % kPrefetchAhead] = next;
      table_.PrefetchBucket(next);
    }
    UpdateBucket(records[i].item, bucket);
    // Count-based CLOCK advance: pointer position after this arrival is
    // ⌊items_seen·m/n⌋ within the period, maintained incrementally.
    ++items_seen_;
    if (items_seen_ >= n) {
      ScanTo(m);
      scan_cursor_ = 0;
      items_seen_ = 0;
      ++current_period_;
      clock_acc_ = 0;
      clock_target_ = 0;
      LTC_METRICS_HOOK(
          ++metrics_->periods_completed;
          metrics_->occupied_cells = metrics_->scan_occupied_scratch;
          metrics_->scan_occupied_scratch = 0;);
    } else {
      clock_target_ += clock_step_div_;
      clock_acc_ += clock_step_mod_;
      if (clock_acc_ >= n) {
        clock_acc_ -= n;
        ++clock_target_;
      }
      ScanTo(clock_target_);
    }
#ifdef LTC_AUDIT
    AuditAfterInsert(records[i].item);
#endif
  }
}

void Ltc::Finalize() {
  // Credit every pending flag: the previous-period flag of cells the sweep
  // has not reached this period, plus the current period's flag (a period
  // is only credited by the NEXT period's sweep, which will never run).
  const size_t m = table_.num_cells();
  for (size_t i = 0; i < m; ++i) {
    CellRef cell = table_.cell(i);
    uint32_t counter = cell.counter();
    if (config_.deviation_eliminator) {
      if (cell.flags() & 0x1) ++counter;
      if (cell.flags() & 0x2) ++counter;
    } else {
      if (cell.flags() & 0x1) ++counter;
    }
    cell.set_counter(counter);
    cell.set_flags(0);
  }
}

bool Ltc::IsTracked(ItemId item) const {
  if (item == 0) return false;  // the empty marker is never tracked
  ConstBucketView bucket = table_.bucket(BucketOf(item));
  return bucket.Probe(item).match >= 0;
}

double Ltc::QuerySignificance(ItemId item) const {
  if (item == 0) return 0.0;
  ConstBucketView bucket = table_.bucket(BucketOf(item));
  const BucketProbe probe = bucket.Probe(item);
  if (probe.match < 0) return 0.0;
  return SignificanceOf(bucket.cell(static_cast<uint32_t>(probe.match)));
}

uint64_t Ltc::EstimateFrequency(ItemId item) const {
  if (item == 0) return 0;
  ConstBucketView bucket = table_.bucket(BucketOf(item));
  const BucketProbe probe = bucket.Probe(item);
  if (probe.match < 0) return 0;
  return bucket.cell(static_cast<uint32_t>(probe.match)).freq();
}

uint64_t Ltc::EstimatePersistency(ItemId item) const {
  if (item == 0) return 0;
  ConstBucketView bucket = table_.bucket(BucketOf(item));
  const BucketProbe probe = bucket.Probe(item);
  if (probe.match < 0) return 0;
  return bucket.cell(static_cast<uint32_t>(probe.match)).counter();
}

namespace {

void SortAndTruncateReports(std::vector<Ltc::Report>* all, size_t k) {
  std::sort(all->begin(), all->end(),
            [](const Ltc::Report& a, const Ltc::Report& b) {
              if (a.significance != b.significance) {
                return a.significance > b.significance;
              }
              return a.item < b.item;
            });
  if (all->size() > k) all->resize(k);
}

}  // namespace

std::vector<Ltc::Report> Ltc::TopK(size_t k) const {
  std::vector<Report> all;
  const size_t m = table_.num_cells();
  all.reserve(m);
  for (size_t i = 0; i < m; ++i) {
    ConstCellRef cell = table_.cell(i);
    if (!IsEmpty(cell)) {
      all.push_back(
          {cell.id(), cell.freq(), cell.counter(), SignificanceOf(cell)});
    }
  }
  SortAndTruncateReports(&all, k);
  return all;
}

std::vector<Ltc::Report> Ltc::ItemsAbove(double threshold) const {
  std::vector<Report> all;
  const size_t m = table_.num_cells();
  for (size_t i = 0; i < m; ++i) {
    ConstCellRef cell = table_.cell(i);
    if (IsEmpty(cell)) continue;
    double sig = SignificanceOf(cell);
    if (sig >= threshold) {
      all.push_back({cell.id(), cell.freq(), cell.counter(), sig});
    }
  }
  SortAndTruncateReports(&all, all.size());
  return all;
}

std::vector<Ltc::Report> Ltc::SnapshotTopK(size_t k) const {
  const uint8_t pending_mask = config_.deviation_eliminator ? 0x3 : 0x1;
  std::vector<Report> all;
  const size_t m = table_.num_cells();
  all.reserve(m);
  for (size_t i = 0; i < m; ++i) {
    ConstCellRef cell = table_.cell(i);
    if (IsEmpty(cell)) continue;
    uint64_t credited =
        cell.counter() + static_cast<uint64_t>(__builtin_popcount(
                             cell.flags() & pending_mask));
    all.push_back({cell.id(), cell.freq(), credited,
                   config_.alpha * cell.freq() + config_.beta * credited});
  }
  SortAndTruncateReports(&all, k);
  return all;
}

Ltc::TableStats Ltc::ComputeStats() const {
  TableStats stats;
  double sig_sum = 0.0;
  for (uint32_t b = 0; b < num_buckets_; ++b) {
    ConstBucketView bucket = table_.bucket(b);
    bool full = true;
    for (uint32_t i = 0; i < bucket.size(); ++i) {
      ConstCellRef cell = bucket.cell(i);
      if (IsEmpty(cell)) {
        ++stats.empty_cells;
        full = false;
      } else {
        ++stats.occupied_cells;
        sig_sum += SignificanceOf(cell);
        stats.max_frequency =
            std::max<uint64_t>(stats.max_frequency, cell.freq());
        stats.max_persistency =
            std::max<uint64_t>(stats.max_persistency, cell.counter());
      }
    }
    if (full) ++stats.full_buckets;
  }
  if (stats.occupied_cells > 0) {
    // One guard covers both ratios: occupied_cells > 0 implies a
    // non-empty table, so neither denominator can be zero, and an empty
    // table keeps the zero-initialized values instead of producing NaN.
    stats.occupancy =
        static_cast<double>(stats.occupied_cells) / table_.num_cells();
    stats.avg_significance = sig_sum / stats.occupied_cells;
  }
  return stats;
}

bool Ltc::CanMergeWith(const Ltc& other) const {
  return num_buckets_ == other.num_buckets_ &&
         config_.cells_per_bucket == other.config_.cells_per_bucket &&
         config_.seed == other.config_.seed &&
         config_.alpha == other.config_.alpha &&
         config_.beta == other.config_.beta &&
         config_.deviation_eliminator == other.config_.deviation_eliminator;
}

bool Ltc::MergeFrom(const Ltc& other) {
  if (!CanMergeWith(other)) return false;
  const uint32_t d = config_.cells_per_bucket;
  // Materialized cell values for the per-bucket merge scratch space (the
  // only place the old AoS shape survives, as a local working set).
  struct CellData {
    ItemId id;
    uint32_t freq;
    uint32_t counter;
    uint8_t flags;
  };
  std::vector<CellData> combined;
  combined.reserve(2 * d);
  auto significance_of = [this](const CellData& cell) {
    return config_.alpha * cell.freq + config_.beta * cell.counter;
  };
  for (uint32_t b = 0; b < num_buckets_; ++b) {
    BucketView mine = table_.bucket(b);
    ConstBucketView theirs = other.table_.bucket(b);
    combined.clear();
    auto absorb = [&](ConstCellRef cell) {
      if (cell.id() == 0) return;
      for (CellData& existing : combined) {
        if (existing.id == cell.id()) {
          existing.freq += cell.freq();
          existing.counter += cell.counter();
          existing.flags |= cell.flags();
          return;
        }
      }
      combined.push_back(
          {cell.id(), cell.freq(), cell.counter(), cell.flags()});
    };
    for (uint32_t i = 0; i < d; ++i) absorb(mine.cell(i));
    for (uint32_t i = 0; i < d; ++i) absorb(theirs.cell(i));

    std::sort(combined.begin(), combined.end(),
              [&](const CellData& a, const CellData& b2) {
                double sa = significance_of(a);
                double sb = significance_of(b2);
                if (sa != sb) return sa > sb;
                return a.id < b2.id;
              });
    for (uint32_t i = 0; i < d; ++i) {
      CellRef cell = mine.cell(i);
      if (i < combined.size()) {
        cell.set_id(combined[i].id);
        cell.set_freq(combined[i].freq);
        cell.set_counter(combined[i].counter);
        cell.set_flags(combined[i].flags);
      } else {
        cell.Clear();
      }
    }
  }
  // Summed counters can legitimately span both inputs' histories; widen
  // the per-table persistency cap accordingly (see CheckInvariants).
  merged_history_periods_ += other.current_period_ +
                             other.merged_history_periods_ + 1;
  current_period_ = std::max(current_period_, other.current_period_);
  return true;
}

namespace {
constexpr uint32_t kLtcMagic = 0x4c544331;  // "LTC1"
// v2: explicit format version after the magic (v1 had none); cells as a
//     bucket-major array-of-structs (id, freq, counter, flags per cell).
// v3: cells as lane-major SoA (all ids, all freqs, all counters, all
//     flags), matching TableLayout so checkpoint images mirror the
//     in-memory page shape. Deserialize still accepts v2 images.
constexpr uint32_t kLtcFormatVersionAos = 2;
constexpr uint32_t kLtcFormatVersion = 3;
}  // namespace

void Ltc::Serialize(BinaryWriter& writer) const {
  PutVersionedMagic(writer, kLtcMagic, kLtcFormatVersion);
  writer.PutU64(config_.memory_bytes);
  writer.PutU32(config_.cells_per_bucket);
  writer.PutDouble(config_.alpha);
  writer.PutDouble(config_.beta);
  writer.PutU8(config_.long_tail_replacement ? 1 : 0);
  writer.PutU8(static_cast<uint8_t>(config_.init_policy));
  writer.PutU8(config_.deviation_eliminator ? 1 : 0);
  writer.PutU8(config_.period_mode == PeriodMode::kTimeBased ? 1 : 0);
  writer.PutU64(config_.items_per_period);
  writer.PutDouble(config_.period_seconds);
  writer.PutU64(config_.seed);

  writer.PutU64(items_seen_);
  writer.PutU64(current_period_);
  writer.PutU64(scan_cursor_);
  writer.PutDouble(last_time_);
  writer.PutU64(merged_history_periods_);

  const size_t m = table_.num_cells();
  writer.PutU64(m);
  for (size_t i = 0; i < m; ++i) writer.PutU64(table_.cell(i).id());
  for (size_t i = 0; i < m; ++i) writer.PutU32(table_.cell(i).freq());
  for (size_t i = 0; i < m; ++i) writer.PutU32(table_.cell(i).counter());
  for (size_t i = 0; i < m; ++i) writer.PutU8(table_.cell(i).flags());
}

std::optional<Ltc> Ltc::Deserialize(BinaryReader& reader) {
  const uint32_t magic = reader.GetU32();
  const uint32_t version = reader.GetU32();
  if (reader.failed() || magic != kLtcMagic ||
      (version != kLtcFormatVersionAos && version != kLtcFormatVersion)) {
    return std::nullopt;
  }
  LtcConfig config;
  config.memory_bytes = reader.GetU64();
  config.cells_per_bucket = reader.GetU32();
  config.alpha = reader.GetDouble();
  config.beta = reader.GetDouble();
  config.long_tail_replacement = reader.GetU8() != 0;
  uint8_t policy = reader.GetU8();
  if (policy > static_cast<uint8_t>(InitPolicy::kMinPlusOne)) {
    return std::nullopt;
  }
  config.init_policy = static_cast<InitPolicy>(policy);
  config.deviation_eliminator = reader.GetU8() != 0;
  config.period_mode =
      reader.GetU8() != 0 ? PeriodMode::kTimeBased : PeriodMode::kCountBased;
  config.items_per_period = reader.GetU64();
  config.period_seconds = reader.GetDouble();
  config.seed = reader.GetU64();
  if (reader.failed() || config.Validate().has_value()) return std::nullopt;

  // Geometry sanity BEFORE allocating: the config implies the exact
  // cell count (the same arithmetic as the constructor), and every
  // serialized cell costs 17 bytes, so an image whose remaining input
  // cannot hold its own cell arrays is corrupt. Without this gate a
  // flipped memory_bytes byte turns into a near-2^64 allocation —
  // checkpoints reach here only behind a CRC frame, but PUSH_SKETCH
  // payloads arrive raw off the network.
  const size_t implied_w = config.memory_bytes /
                           (LtcConfig::BytesPerCell() *
                            config.cells_per_bucket);
  const uint64_t implied_cells =
      static_cast<uint64_t>(
          static_cast<uint32_t>(std::max<size_t>(1, implied_w))) *
      config.cells_per_bucket;
  if (implied_cells > reader.Remaining() / 17) return std::nullopt;

  Ltc table(config);
  table.items_seen_ = reader.GetU64();
  table.current_period_ = reader.GetU64();
  table.scan_cursor_ = reader.GetU64();
  table.last_time_ = reader.GetDouble();
  table.merged_history_periods_ = reader.GetU64();

  uint64_t num_cells = reader.GetU64();
  if (reader.failed() || num_cells != table.table_.num_cells() ||
      table.scan_cursor_ > num_cells) {
    return std::nullopt;
  }
  if (version == kLtcFormatVersionAos) {
    // v2 back-compat shim: the AoS image interleaves the four fields per
    // cell; land them in the SoA lanes cell by cell.
    for (uint64_t i = 0; i < num_cells; ++i) {
      CellRef cell = table.table_.cell(i);
      cell.set_id(reader.GetU64());
      cell.set_freq(reader.GetU32());
      cell.set_counter(reader.GetU32());
      cell.set_flags(reader.GetU8());
    }
  } else {
    for (uint64_t i = 0; i < num_cells; ++i) {
      table.table_.cell(i).set_id(reader.GetU64());
    }
    for (uint64_t i = 0; i < num_cells; ++i) {
      table.table_.cell(i).set_freq(reader.GetU32());
    }
    for (uint64_t i = 0; i < num_cells; ++i) {
      table.table_.cell(i).set_counter(reader.GetU32());
    }
    for (uint64_t i = 0; i < num_cells; ++i) {
      table.table_.cell(i).set_flags(reader.GetU8());
    }
  }
  table.ResetClockStepper();
  if (reader.failed() || !table.CheckInvariants()) return std::nullopt;

  // Clock-state consistency: the pacing relations the clock advance
  // maintains hold at every instant (Finalize touches only flags), so a
  // checkpoint that breaks them is corrupt. The expressions mirror the
  // insert path's exactly, so the comparison is exact.
  const uint64_t m = table.table_.num_cells();
  if (config.period_mode == PeriodMode::kCountBased) {
    if (table.items_seen_ >= config.items_per_period ||
        table.scan_cursor_ !=
            table.items_seen_ * m / config.items_per_period) {
      return std::nullopt;
    }
  } else {
    const double t = config.period_seconds;
    const double period_start =
        static_cast<double>(table.current_period_) * t;
    const double period_end =
        (static_cast<double>(table.current_period_) + 1.0) * t;
    if (!(table.last_time_ >= period_start) ||
        !(table.last_time_ < period_end)) {
      return std::nullopt;
    }
    const double offset = table.last_time_ - period_start;
    const auto target =
        static_cast<uint64_t>(offset / t * static_cast<double>(m));
    if (table.scan_cursor_ != std::min(target, m)) return std::nullopt;
  }
  return table;
}

#ifdef LTC_AUDIT
namespace {

// Diagnostic context appended to every audit failure so a violation is
// actionable without a debugger.
std::string AuditContext(ItemId item, uint64_t period, uint64_t cursor,
                         uint64_t items_seen) {
  return " [item=" + std::to_string(item) +
         " period=" + std::to_string(period) +
         " cursor=" + std::to_string(cursor) +
         " items_seen=" + std::to_string(items_seen) + "]";
}

}  // namespace

void Ltc::AuditAfterInsert(ItemId item) {
  const uint64_t m = table_.num_cells();
  auto context = [&] {
    return AuditContext(item, current_period_, scan_cursor_, items_seen_);
  };

  if (!CheckInvariants()) {
    AuditFail("Ltc", "structural", "CheckInvariants failed" + context());
  }

  // CLOCK pointer pacing (§III-B): the pointer must sit exactly where the
  // fractional-step formula places it, so each period sweeps exactly m
  // slots. The expected value is recomputed from first principles (the
  // division the hot path replaced with an incremental stepper), so this
  // also audits the stepper's Bresenham invariant on every insert.
  if (config_.period_mode == PeriodMode::kCountBased) {
    if (items_seen_ >= config_.items_per_period) {
      AuditFail("Ltc", "clock-pacing",
                "items_seen did not wrap at period end" + context());
    }
    uint64_t expected = items_seen_ * m / config_.items_per_period;
    if (scan_cursor_ != expected) {
      AuditFail("Ltc", "clock-pacing",
                "cursor " + std::to_string(scan_cursor_) + " != expected " +
                    std::to_string(expected) + context());
    }
    if (clock_target_ != expected ||
        clock_acc_ != items_seen_ * m % config_.items_per_period) {
      AuditFail("Ltc", "clock-pacing",
                "incremental stepper diverged from i*m/n (target=" +
                    std::to_string(clock_target_) + " acc=" +
                    std::to_string(clock_acc_) + ")" + context());
    }
  } else {
    // Same float expressions as AdvanceTimeClock, so equality is exact.
    const double t = config_.period_seconds;
    const double period_start = static_cast<double>(current_period_) * t;
    const double period_end =
        (static_cast<double>(current_period_) + 1.0) * t;
    if (last_time_ >= period_end ||
        (current_period_ > 0 && last_time_ < period_start)) {
      AuditFail("Ltc", "clock-pacing",
                "time " + std::to_string(last_time_) +
                    " outside current period" + context());
    }
    double offset = last_time_ - period_start;
    auto target = static_cast<uint64_t>(offset / t * static_cast<double>(m));
    uint64_t expected = std::min(target, m);
    if (scan_cursor_ != expected) {
      AuditFail("Ltc", "clock-pacing",
                "cursor " + std::to_string(scan_cursor_) + " != expected " +
                    std::to_string(expected) + context());
    }
  }

  // The period the arrival was flagged under. In count-based mode the
  // clock advances AFTER the bucket update, so an arrival that completed
  // a period carries the previous period's flag.
  uint64_t insert_period = current_period_;
  if (config_.period_mode == PeriodMode::kCountBased && items_seen_ == 0 &&
      current_period_ > 0) {
    insert_period = current_period_ - 1;
  }
  const uint8_t insert_mask =
      config_.deviation_eliminator
          ? static_cast<uint8_t>(1u << (insert_period & 1))
          : uint8_t{0x1};

  // Bucket-local integrity + per-cell checks over the whole table, all
  // through the BucketView seam (the audit must not bypass the layout
  // API it is auditing). The O(m) cost is the point of an audit build: a
  // violation is caught on the exact insert that introduced it.
  for (uint32_t b = 0; b < num_buckets_; ++b) {
    ConstBucketView bucket = table_.bucket(b);
    const uint32_t d = bucket.size();
    for (uint32_t i = 0; i < d; ++i) {
      ConstCellRef cell = bucket.cell(i);
      if (IsEmpty(cell)) continue;
      if (BucketOf(cell.id()) != b) {
        AuditFail("Ltc", "bucket-integrity",
                  "occupant " + std::to_string(cell.id()) +
                      " does not hash to bucket " + std::to_string(b) +
                      context());
      }
      for (uint32_t j = i + 1; j < d; ++j) {
        ConstCellRef later = bucket.cell(j);
        if (!IsEmpty(later) && later.id() == cell.id()) {
          AuditFail("Ltc", "bucket-integrity",
                    "duplicate occupant " + std::to_string(cell.id()) +
                        " in bucket " + std::to_string(b) + context());
        }
      }
      if (cell.id() == item && !(cell.flags() & insert_mask) &&
          cell.counter() == 0) {
        // Parity-flag consistency (§III-C): the arrival must leave a
        // trace — either its period flag is still pending, or the sweep
        // already passed the cell and converted it into a credit (which
        // the same insert's clock advance may legitimately do, e.g. under
        // the single-flag scheme or on a period rollover).
        AuditFail("Ltc", "parity-flags",
                  "inserted item lost its period flag (flags=" +
                      std::to_string(cell.flags()) + ")" + context());
      }
      if (audit_oracle_ != nullptr &&
          config_.EffectiveInitPolicy() == InitPolicy::kOne) {
        // No overestimation (Theorem IV.1). Frequency is one-sided for
        // the basic initializer regardless of the flag scheme; the
        // persistency bound additionally needs the Deviation Eliminator
        // (the single-flag scheme may credit one period twice, §III-C).
        uint64_t true_freq = audit_oracle_->TrueFrequency(cell.id());
        if (cell.freq() > true_freq) {
          AuditFail("Ltc", "no-overestimation",
                    "frequency " + std::to_string(cell.freq()) +
                        " > true " + std::to_string(true_freq) +
                        " for item " + std::to_string(cell.id()) +
                        context());
        }
        if (config_.deviation_eliminator) {
          uint64_t pending = static_cast<uint64_t>(
              __builtin_popcount(cell.flags() & ScanFlagMask())) +
              static_cast<uint64_t>(
                  __builtin_popcount(cell.flags() & CurrentFlagMask()));
          uint64_t true_pers = audit_oracle_->TruePersistency(cell.id());
          if (cell.counter() + pending > true_pers) {
            AuditFail("Ltc", "no-overestimation",
                      "persistency " + std::to_string(cell.counter()) +
                          "+" + std::to_string(pending) + " pending > true " +
                          std::to_string(true_pers) + " for item " +
                          std::to_string(cell.id()) + context());
          }
        }
      }
    }
  }
}
#endif  // LTC_AUDIT

bool Ltc::CheckInvariants() const {
  const uint8_t allowed = config_.deviation_eliminator ? 0x3 : 0x1;
  for (uint32_t b = 0; b < num_buckets_; ++b) {
    ConstBucketView bucket = table_.bucket(b);
    const uint32_t d = bucket.size();
    for (uint32_t i = 0; i < d; ++i) {
      ConstCellRef cell = bucket.cell(i);
      if (cell.flags() & ~allowed) return false;
      if (cell.id() == 0) {
        if (cell.freq() != 0 || cell.counter() != 0 || cell.flags() != 0) {
          return false;
        }
      } else {
        // Bucket integrity: every occupant must hash to the bucket it
        // sits in, and appear there only once. Catches corrupt
        // checkpoints at Deserialize time (which calls this) before any
        // query trusts them.
        if (BucketOf(cell.id()) != b) return false;
        for (uint32_t j = i + 1; j < d; ++j) {
          if (bucket.cell(j).id() == cell.id()) return false;
        }
        // Persistency can never exceed the number of periods touched so
        // far — plus whatever history merged-in peers contributed. Under
        // the basic single-flag scheme a period can be credited twice
        // (the 2× deviation of §III-C), so the cap doubles.
        uint64_t cap = current_period_ + 1 + merged_history_periods_;
        if (!config_.deviation_eliminator) cap *= 2;
        if (cell.counter() > cap) {
          return false;
        }
      }
    }
  }
  return scan_cursor_ <= table_.num_cells();
}

}  // namespace ltc
