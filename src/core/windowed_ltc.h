// Jumping-window LTC — the natural extension of the paper's future-work
// direction: significance over the RECENT past instead of the whole
// stream (the §I congestion use case really wants "flows persistent over
// the last hour", not since boot).
//
// Construction: two panes, each an independent Ltc over half the memory
// budget, rotated every ⌈W/2⌉ periods. A query merges the active pane
// with the previous one, so the answer always covers between ⌈W/2⌉ and
// W recent periods and never anything older than W. Because the panes
// partition time disjointly, merging adds per-item fields exactly
// (Ltc::MergeFrom is exact for time-partitioned inputs).

#ifndef LTC_CORE_WINDOWED_LTC_H_
#define LTC_CORE_WINDOWED_LTC_H_

#include <cstdint>
#include <vector>

#include "core/ltc.h"

namespace ltc {

class WindowedLtc {
 public:
  /// \param config          per-pane configuration; memory_bytes is the
  ///                        TOTAL budget (halved per pane). Must be
  ///                        time-based: a window of periods needs a
  ///                        wall-clock period definition.
  /// \param window_periods  W >= 2, the history horizon in periods
  WindowedLtc(const LtcConfig& config, uint32_t window_periods);

  /// Processes one arrival; timestamps must be nondecreasing.
  void Insert(ItemId item, double time);

  /// Top-k significant items over the covered window (the last
  /// ⌈W/2⌉..W periods). Non-destructive; callable at any time.
  std::vector<Ltc::Report> TopK(size_t k) const;

  /// Significance of one item over the covered window (0 if untracked).
  double QuerySignificance(ItemId item) const;

  /// Oldest period index the current answer can include.
  uint64_t WindowStartPeriod() const;

  uint32_t window_periods() const { return window_periods_; }
  uint32_t pane_periods() const { return pane_periods_; }
  uint64_t current_pane() const { return current_pane_; }
  size_t MemoryBytes() const {
    return active_.MemoryBytes() + previous_.MemoryBytes();
  }

 private:
  void Rotate(uint64_t pane_index);
  uint64_t PaneOf(double time) const;

  LtcConfig pane_config_;
  uint32_t window_periods_;
  uint32_t pane_periods_;
  uint64_t current_pane_ = 0;
  Ltc active_;
  Ltc previous_;
  bool previous_live_ = false;  // previous_ holds the preceding pane
};

}  // namespace ltc

#endif  // LTC_CORE_WINDOWED_LTC_H_
