// Minimal checked binary serialization, used to checkpoint and restore
// sketch state (core/ltc_serial.h, sketch serializers). Fixed-width
// little-endian encoding, explicit versioned headers at the call sites,
// and a sticky failure flag on the reader so truncated or corrupt input
// can never produce out-of-bounds reads — it just yields std::nullopt at
// the Load call.

#ifndef LTC_COMMON_SERIAL_H_
#define LTC_COMMON_SERIAL_H_

#include <cstdint>
#include <cstring>
#include <optional>
#include <string>
#include <string_view>

namespace ltc {

class BinaryWriter {
 public:
  void PutU8(uint8_t v) { buffer_.push_back(static_cast<char>(v)); }
  void PutU32(uint32_t v) { PutRaw(&v, sizeof(v)); }
  void PutU64(uint64_t v) { PutRaw(&v, sizeof(v)); }
  void PutDouble(double v) { PutRaw(&v, sizeof(v)); }
  void PutBytes(const void* data, size_t len) { PutRaw(data, len); }

  /// Length-prefixed string.
  void PutString(std::string_view s) {
    PutU64(s.size());
    PutRaw(s.data(), s.size());
  }

  const std::string& data() const { return buffer_; }
  size_t size() const { return buffer_.size(); }

 private:
  void PutRaw(const void* data, size_t len) {
    buffer_.append(static_cast<const char*>(data), len);
  }
  std::string buffer_;
};

class BinaryReader {
 public:
  explicit BinaryReader(std::string_view data) : data_(data) {}

  uint8_t GetU8() {
    uint8_t v = 0;
    GetRaw(&v, sizeof(v));
    return v;
  }
  uint32_t GetU32() {
    uint32_t v = 0;
    GetRaw(&v, sizeof(v));
    return v;
  }
  uint64_t GetU64() {
    uint64_t v = 0;
    GetRaw(&v, sizeof(v));
    return v;
  }
  double GetDouble() {
    double v = 0;
    GetRaw(&v, sizeof(v));
    return v;
  }
  std::string GetString() {
    uint64_t len = GetU64();
    if (failed_ || len > Remaining()) {
      failed_ = true;
      return {};
    }
    std::string out(data_.substr(pos_, len));
    pos_ += len;
    return out;
  }
  void GetBytes(void* out, size_t len) { GetRaw(out, len); }

  /// True once any read ran past the end; all subsequent reads return 0.
  bool failed() const { return failed_; }
  /// True iff everything was consumed and nothing failed.
  bool AtEnd() const { return !failed_ && pos_ == data_.size(); }
  size_t Remaining() const { return data_.size() - pos_; }

 private:
  void GetRaw(void* out, size_t len) {
    if (failed_ || len > Remaining()) {
      failed_ = true;
      std::memset(out, 0, len);
      return;
    }
    std::memcpy(out, data_.data() + pos_, len);
    pos_ += len;
  }

  std::string_view data_;
  size_t pos_ = 0;
  bool failed_ = false;
};

/// Every serializable structure opens its blob with a 4-byte type magic
/// followed by a 4-byte format version (see docs/DURABILITY.md). The
/// version is bumped whenever the byte layout changes; Deserialize
/// rejects blobs whose version it does not speak rather than misreading
/// them. Pre-versioning (v1) blobs had no version field and are
/// rejected the same way.
inline void PutVersionedMagic(BinaryWriter& writer, uint32_t magic,
                              uint32_t version) {
  writer.PutU32(magic);
  writer.PutU32(version);
}

/// Consumes and checks a magic + version pair. False on mismatch or a
/// short read (the reader's sticky failure flag is set by the read).
inline bool CheckVersionedMagic(BinaryReader& reader, uint32_t magic,
                                uint32_t version) {
  const uint32_t got_magic = reader.GetU32();
  const uint32_t got_version = reader.GetU32();
  return !reader.failed() && got_magic == magic && got_version == version;
}

/// Whole-file helpers (binary). Load returns nullopt on I/O failure.
bool WriteFile(const std::string& path, std::string_view contents);
std::optional<std::string> ReadFileToString(const std::string& path);

}  // namespace ltc

#endif  // LTC_COMMON_SERIAL_H_
