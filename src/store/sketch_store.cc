#include "store/sketch_store.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/serial.h"
#include "store/page.h"
#include "store/wal.h"

namespace ltc {
namespace store {

SketchStore::SketchStore(Fs& fs, const std::string& dir,
                         const SketchStoreOptions& options)
    : options_(options), disk_(fs, dir) {
  size_t frames = options_.page_bytes == 0
                      ? 1
                      : options_.mem_budget_bytes / options_.page_bytes;
  if (frames < 1) frames = 1;
  pool_ = std::make_unique<BufferPool>(frames, &disk_);
}

std::unique_ptr<SketchStore> SketchStore::Open(
    Fs& fs, const std::string& dir, const SketchStoreOptions& options,
    std::string* error) {
  if (options.page_bytes == 0) {
    if (error != nullptr) *error = "page_bytes must be > 0";
    return nullptr;
  }
  if (!fs.ListDir(dir).has_value()) {
    if (error != nullptr) {
      *error = "store directory '" + dir + "' does not exist";
    }
    return nullptr;
  }
  std::unique_ptr<SketchStore> self(new SketchStore(fs, dir, options));
  RecoveryManager recovery(self->disk_);
  if (!recovery.Run(&self->recovery_, error)) return nullptr;
  self->next_lsn_ = self->recovery_.max_lsn + 1;
  for (const auto& [tenant, pages] : self->recovery_.tenant_pages) {
    uint32_t max_page = 0;
    for (uint32_t page : pages) max_page = std::max(max_page, page);
    // Geometry holes (a missing page file with no delta in the log)
    // surface as typed Get() errors, not silent truncation.
    self->tenant_pages_[tenant] = max_page + 1;
  }
  return self;
}

bool SketchStore::Poisoned(std::string* error) const {
  if (!poisoned_) return false;
  if (error != nullptr) {
    *error = "store poisoned: in-memory frames lag the WAL after a failed "
             "commit; reopen the store to recover";
  }
  return true;
}

bool SketchStore::Put(uint64_t tenant, const Ltc& sketch,
                      std::string* error) {
  if (Poisoned(error)) return false;
  BinaryWriter writer;
  sketch.Serialize(writer);
  std::vector<std::string> pages = PageCodec::SplitPayload(
      writer.data(), sketch.num_cells(), options_.page_bytes, error);
  if (pages.empty()) return false;
  auto known = tenant_pages_.find(tenant);
  if (known != tenant_pages_.end() && known->second != pages.size()) {
    if (error != nullptr) {
      *error = "tenant " + std::to_string(tenant) + " has " +
               std::to_string(known->second) + " pages; this sketch needs " +
               std::to_string(pages.size()) +
               " (a tenant's geometry is fixed at first Put)";
    }
    return false;
  }

  // Pass 1 — diff against the current images to find the dirty set.
  // Nothing is modified yet: a failure below leaves the store exactly
  // as it was.
  std::vector<uint32_t> dirty;
  for (uint32_t i = 0; i < pages.size(); ++i) {
    BufferPool::Frame* frame =
        pool_->Fetch(tenant, i, /*create_if_absent=*/true, error);
    if (frame == nullptr) return false;
    // Same page COUNT does not imply same cell count (different lane
    // sizes can slice into equally many pages), so page sizes are the
    // real geometry check: equal sizes on every page forces equal lane
    // bytes, which forces equal m.
    if (known != tenant_pages_.end() && !frame->payload.empty() &&
        frame->payload.size() != pages[i].size()) {
      const size_t existing_bytes = frame->payload.size();
      pool_->Unpin(frame, /*mark_dirty=*/false);
      if (error != nullptr) {
        *error = "tenant " + std::to_string(tenant) + " page " +
                 std::to_string(i) + " holds " +
                 std::to_string(existing_bytes) +
                 " bytes; this sketch needs " +
                 std::to_string(pages[i].size()) +
                 " (a tenant's geometry is fixed at first Put)";
      }
      return false;
    }
    const bool changed = frame->payload != pages[i];
    pool_->Unpin(frame, /*mark_dirty=*/false);
    if (changed) dirty.push_back(i);
  }
  if (dirty.empty()) {
    tenant_pages_[tenant] = static_cast<uint32_t>(pages.size());
    ++stats_.puts;
    ++stats_.clean_puts;
    PublishMetrics();
    return true;
  }

  // Log-before-dirty: ONE record carrying every changed page, durable
  // before any frame changes. Whole-record CRC framing makes the Put
  // atomic across a crash — recovery sees all of it or none of it.
  WalRecord record;
  record.lsn = next_lsn_;
  record.tenant = tenant;
  record.pages.reserve(dirty.size());
  for (uint32_t i : dirty) {
    WalPageDelta delta;
    delta.page_id = i;
    delta.payload = pages[i];
    record.pages.push_back(std::move(delta));
  }
  const std::string bytes = EncodeWalRecord(record);
  const std::string wal_path = disk_.WalPath();
  if (!disk_.fs().AppendAll(wal_path, bytes)) {
    if (error != nullptr) {
      *error = "cannot append to WAL '" + wal_path + "'";
    }
    return false;
  }
  if (!disk_.fs().Sync(wal_path)) {
    if (error != nullptr) {
      *error = "cannot fsync WAL '" + wal_path + "'";
    }
    return false;
  }
  if (!wal_dir_synced_) {
    if (!disk_.fs().SyncDir(disk_.dir())) {
      if (error != nullptr) {
        *error = "cannot fsync store directory '" + disk_.dir() + "'";
      }
      return false;
    }
    wal_dir_synced_ = true;
  }

  // Pass 2 — commit to the pool. The record is durable, so a failure
  // here cannot lose data, but it can leave memory behind the log:
  // fail closed until a reopen replays it.
  for (uint32_t i : dirty) {
    BufferPool::Frame* frame =
        pool_->Fetch(tenant, i, /*create_if_absent=*/true, error);
    if (frame == nullptr) {
      poisoned_ = true;
      if (error != nullptr) {
        *error = "commit interrupted (" + *error +
                 "); store poisoned — reopen to recover from the WAL";
      }
      return false;
    }
    frame->payload = pages[i];
    frame->lsn = record.lsn;
    pool_->Unpin(frame, /*mark_dirty=*/true);
  }
  ++next_lsn_;
  tenant_pages_[tenant] = static_cast<uint32_t>(pages.size());
  ++stats_.puts;
  ++stats_.wal_records;
  stats_.wal_bytes += bytes.size();
  if (wal_records_ != nullptr) {
    wal_records_->Increment();
    wal_bytes_->Increment(bytes.size());
  }
  PublishMetrics();
  return true;
}

std::optional<Ltc> SketchStore::Get(uint64_t tenant, std::string* error) {
  if (Poisoned(error)) return std::nullopt;
  auto known = tenant_pages_.find(tenant);
  if (known == tenant_pages_.end()) {
    if (error != nullptr) {
      *error = "unknown tenant " + std::to_string(tenant);
    }
    return std::nullopt;
  }
  std::string payload;
  for (uint32_t i = 0; i < known->second; ++i) {
    BufferPool::Frame* frame =
        pool_->Fetch(tenant, i, /*create_if_absent=*/false, error);
    if (frame == nullptr) return std::nullopt;
    payload += frame->payload;
    pool_->Unpin(frame, /*mark_dirty=*/false);
  }
  BinaryReader reader(payload);
  std::optional<Ltc> sketch = Ltc::Deserialize(reader);
  if (!sketch.has_value() || !reader.AtEnd()) {
    if (error != nullptr) {
      *error = "tenant " + std::to_string(tenant) +
               ": assembled pages do not form a valid sketch image";
    }
    return std::nullopt;
  }
  ++stats_.gets;
  PublishMetrics();
  return sketch;
}

bool SketchStore::EvictTenant(uint64_t tenant, std::string* error) {
  if (Poisoned(error)) return false;
  if (tenant_pages_.count(tenant) == 0) {
    if (error != nullptr) {
      *error = "unknown tenant " + std::to_string(tenant);
    }
    return false;
  }
  const bool ok = pool_->DropTenant(tenant, error);
  PublishMetrics();
  return ok;
}

bool SketchStore::CheckpointDirty(std::string* error) {
  if (Poisoned(error)) return false;
  const auto start = std::chrono::steady_clock::now();
  const size_t dirty_pages = pool_->dirty_count();
  if (!pool_->FlushDirty(error)) return false;
  // Every logged delta is now in a durable page file; retire the log.
  const std::string wal_path = disk_.WalPath();
  if (disk_.fs().Exists(wal_path)) {
    if (!disk_.fs().Remove(wal_path)) {
      if (error != nullptr) {
        *error = "cannot remove checkpointed WAL '" + wal_path + "'";
      }
      return false;
    }
    if (!disk_.fs().SyncDir(disk_.dir())) {
      if (error != nullptr) {
        *error = "cannot fsync store directory '" + disk_.dir() + "'";
      }
      return false;
    }
    wal_dir_synced_ = false;
  }
  ++stats_.checkpoints;
  if (checkpoints_ != nullptr) {
    checkpoints_->Increment();
    const auto elapsed = std::chrono::steady_clock::now() - start;
    const auto usec =
        std::chrono::duration_cast<std::chrono::microseconds>(elapsed)
            .count();
    checkpoint_duration_usec_->Record(usec > 0 ? static_cast<uint64_t>(usec)
                                               : 0);
    checkpoint_dirty_pages_->Record(dirty_pages);
  }
  PublishMetrics();
  return true;
}

std::vector<uint64_t> SketchStore::Tenants() const {
  std::vector<uint64_t> tenants;
  tenants.reserve(tenant_pages_.size());
  for (const auto& [tenant, pages] : tenant_pages_) tenants.push_back(tenant);
  return tenants;
}

uint32_t SketchStore::PageCountOf(uint64_t tenant) const {
  auto it = tenant_pages_.find(tenant);
  return it == tenant_pages_.end() ? 0 : it->second;
}

void SketchStore::AttachMetrics(telemetry::MetricsRegistry* registry) {
  metrics_ = registry;
  if (registry == nullptr) {
    pages_in_ = pages_out_ = page_hits_ = page_misses_ = nullptr;
    evictions_clean_ = evictions_dirty_ = nullptr;
    wal_records_ = wal_bytes_ = checkpoints_ = nullptr;
    tenants_gauge_ = frames_resident_ = frames_dirty_ = nullptr;
    checkpoint_duration_usec_ = checkpoint_dirty_pages_ = nullptr;
    return;
  }
  pages_in_ = &registry->CounterOf(
      "ltc_store_pages_in_total",
      "Page images loaded from page files into the buffer pool");
  pages_out_ = &registry->CounterOf(
      "ltc_store_pages_out_total",
      "Page images written back to page files (evictions + checkpoints)");
  page_hits_ = &registry->CounterOf(
      "ltc_store_page_hits_total", "Buffer-pool fetches served by a "
      "resident frame");
  page_misses_ = &registry->CounterOf(
      "ltc_store_page_misses_total",
      "Buffer-pool fetches that went to disk (or created a fresh page)");
  evictions_clean_ = &registry->CounterOf(
      "ltc_store_evictions_total",
      "Frames the CLOCK hand evicted, by whether a write-back was owed",
      {{"kind", "clean"}});
  evictions_dirty_ = &registry->CounterOf(
      "ltc_store_evictions_total",
      "Frames the CLOCK hand evicted, by whether a write-back was owed",
      {{"kind", "dirty"}});
  wal_records_ = &registry->CounterOf(
      "ltc_store_wal_records_total",
      "Atomic multi-page records appended to the write-ahead log");
  wal_bytes_ = &registry->CounterOf(
      "ltc_store_wal_bytes_total",
      "Bytes appended to the write-ahead log");
  checkpoints_ = &registry->CounterOf(
      "ltc_store_checkpoints_total",
      "CheckpointDirty calls that flushed and truncated the WAL");
  const char* replay_help =
      "WAL page deltas at the last Open, by replay outcome";
  registry
      ->CounterOf("ltc_store_replay_deltas_total", replay_help,
                  {{"outcome", "applied"}})
      .SetFromSample(recovery_.deltas_applied);
  registry
      ->CounterOf("ltc_store_replay_deltas_total", replay_help,
                  {{"outcome", "stale"}})
      .SetFromSample(recovery_.deltas_stale);
  registry
      ->CounterOf("ltc_store_replay_torn_tails_total",
                  "WAL tails truncated at a bad frame during recovery")
      .SetFromSample(recovery_.torn_tail ? 1 : 0);
  registry
      ->CounterOf("ltc_store_corrupt_pages_total",
                  "Page files that failed frame checks during recovery")
      .SetFromSample(recovery_.corrupt_pages);
  tenants_gauge_ = &registry->GaugeOf(
      "ltc_store_tenants", "Tenant sketches the store currently hosts");
  frames_resident_ = &registry->GaugeOf(
      "ltc_store_frames_resident",
      "Page frames resident in the buffer pool");
  frames_dirty_ = &registry->GaugeOf(
      "ltc_store_frames_dirty",
      "Resident frames owing a write-back");
  checkpoint_duration_usec_ = &registry->HistogramOf(
      "ltc_store_checkpoint_duration_usec",
      "Latency of incremental checkpoints (flush dirty + truncate WAL) "
      "in microseconds");
  checkpoint_dirty_pages_ = &registry->HistogramOf(
      "ltc_store_checkpoint_dirty_pages",
      "Dirty pages each incremental checkpoint had to write back");
  PublishMetrics();
}

void SketchStore::PublishMetrics() {
  if (metrics_ == nullptr) return;
  const BufferPool::Stats& pool_stats = pool_->stats();
  pages_in_->SetFromSample(pool_stats.pages_loaded);
  pages_out_->SetFromSample(pool_stats.pages_stored);
  page_hits_->SetFromSample(pool_stats.hits);
  page_misses_->SetFromSample(pool_stats.misses);
  evictions_clean_->SetFromSample(pool_stats.evictions_clean);
  evictions_dirty_->SetFromSample(pool_stats.evictions_dirty);
  tenants_gauge_->Set(static_cast<double>(tenant_pages_.size()));
  frames_resident_->Set(static_cast<double>(pool_->resident()));
  frames_dirty_->Set(static_cast<double>(pool_->dirty_count()));
}

}  // namespace store
}  // namespace ltc
