// SnapshotStore — a rotation of the last N good checkpoints with a
// walk-back recovery path (docs/DURABILITY.md).
//
// A store is anchored at a base path: Save(payload) frames the payload
// (frame.h), writes it atomically (fs.h) to
//
//     <base>.<seq>.snap        seq = 000000001, 000000002, ...
//
// and prunes everything older than the newest `retain` files. Because
// each snapshot is a *new* name reached only by rename, a crash at any
// instant leaves every previously completed snapshot byte-identical —
// there is no moment at which the last good checkpoint is open for
// writing.
//
// LoadLatest() walks the snapshots newest-first and returns the first
// one whose frame validates (magic, version, both CRCs, length),
// reporting every rejected candidate with its typed SnapshotError
// instead of crashing or returning garbage. A corrupted newest
// snapshot therefore costs one checkpoint interval of progress, never
// the whole state.

#ifndef LTC_SNAPSHOT_SNAPSHOT_STORE_H_
#define LTC_SNAPSHOT_SNAPSHOT_STORE_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/backoff.h"
#include "common/clock.h"
#include "snapshot/frame.h"
#include "snapshot/fs.h"
#include "telemetry/metrics.h"

namespace ltc {

struct SnapshotStoreConfig {
  /// How many newest snapshot files survive pruning (>= 1). More
  /// retained snapshots = more corruption the recovery walk can skip.
  size_t retain = 3;

  /// Retry policy for the atomic write inside Save(): a transient I/O
  /// error (full disk draining, NFS hiccup, injected fault burst) is
  /// re-attempted with exponential backoff + jitter instead of failing
  /// the checkpoint outright. The default (max_attempts = 1) keeps the
  /// historical fail-fast behaviour; sleeps go through the injectable
  /// clock so schedules are deterministically testable.
  BackoffPolicy retry;
};

class SnapshotStore {
 public:
  /// Snapshots live at `<base_path>.<seq>.snap`, in base_path's
  /// directory (which must exist). `fs` defaults to SystemFs(); tests
  /// pass a FailpointFs. `clock` (for retry backoff sleeps) defaults to
  /// SystemClock(); tests pass a FakeClock.
  explicit SnapshotStore(std::string base_path,
                         SnapshotStoreConfig config = {}, Fs* fs = nullptr,
                         Clock* clock = nullptr);

  /// Frames `payload` and persists it as the next snapshot, atomically
  /// and durably, re-attempting the write per config.retry. Returns the
  /// sequence number, or nullopt with `error` set when every attempt
  /// failed — in which case every previously saved snapshot is still
  /// intact and loadable.
  std::optional<uint64_t> Save(std::string_view payload,
                               std::string* error = nullptr);

  /// Write re-attempts Save() has made across its lifetime (0 while
  /// every save succeeds first try).
  uint64_t SaveRetries() const { return save_retries_total_; }

  struct Candidate {
    std::string path;
    uint64_t seq = 0;
    SnapshotError error = SnapshotError::kNone;
  };

  struct Recovered {
    std::string payload;      // the validated frame payload
    uint64_t seq = 0;         // which snapshot it came from
    std::vector<Candidate> skipped;  // newer candidates that failed, with why
  };

  /// Accepts a frame-valid payload, or rejects it so the recovery walk
  /// continues (recorded as kPayloadRejected). Typically binds a
  /// sketch's Deserialize, via DecodeSketchSnapshot (sketch_snapshot.h).
  using PayloadValidator = std::function<bool(std::string_view payload)>;

  /// Newest valid snapshot, walking back over corrupt ones (and over
  /// frame-valid ones the validator rejects, when given). nullopt
  /// (with `error` describing the newest failure, or "no snapshots")
  /// only when NO retained snapshot validates.
  std::optional<Recovered> LoadLatest(
      std::string* error = nullptr,
      const PayloadValidator& validate = nullptr) const;

  /// Existing snapshot files, newest first (not validated).
  std::vector<Candidate> ListSnapshots() const;

  const std::string& base_path() const { return base_path_; }

  /// Attaches a metrics registry (docs/TELEMETRY.md): Save() then
  /// records the ltc_snapshot_* save counters/histograms and
  /// LoadLatest() the recovery walk-back depth and per-error-type skip
  /// counts (so failpoint-injected faults are visible). nullptr
  /// detaches. The registry must outlive the store (or be detached
  /// first); not thread-safe, like the store itself.
  void AttachMetrics(telemetry::MetricsRegistry* registry);

 private:
  std::string PathOf(uint64_t seq) const;
  void Prune();

  std::string base_path_;
  SnapshotStoreConfig config_;
  Fs* fs_;
  Clock* clock_;
  uint64_t next_seq_ = 0;  // 0 = not yet derived from the directory
  uint64_t save_retries_total_ = 0;

  // Metrics (resolved once at AttachMetrics; the per-error-type skip
  // counter is looked up on demand because its label value is dynamic).
  telemetry::MetricsRegistry* metrics_ = nullptr;
  telemetry::Counter* saves_ok_ = nullptr;
  telemetry::Counter* saves_failed_ = nullptr;
  telemetry::Counter* save_retries_ = nullptr;
  telemetry::Histogram* save_bytes_ = nullptr;
  telemetry::Histogram* save_duration_usec_ = nullptr;
  telemetry::Histogram* recovery_walkback_depth_ = nullptr;
};

}  // namespace ltc

#endif  // LTC_SNAPSHOT_SNAPSHOT_STORE_H_
