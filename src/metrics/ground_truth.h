// Exact per-item frequency / persistency / significance, computed in one
// pass over a Stream — the oracle every experiment scores against (§V-A).

#ifndef LTC_METRICS_GROUND_TRUTH_H_
#define LTC_METRICS_GROUND_TRUTH_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "stream/stream.h"

namespace ltc {

class GroundTruth {
 public:
  struct Info {
    uint64_t frequency = 0;
    uint32_t persistency = 0;
    uint32_t last_period = 0xffffffffu;  // internal: dedup within period
  };

  /// Single pass over the stream: counts every record, and counts a period
  /// once per (item, period) pair.
  static GroundTruth Compute(const Stream& stream);

  uint64_t Frequency(ItemId item) const;
  uint32_t Persistency(ItemId item) const;
  double Significance(ItemId item, double alpha, double beta) const {
    return alpha * static_cast<double>(Frequency(item)) +
           beta * static_cast<double>(Persistency(item));
  }

  /// The true top-k by significance, descending, ties broken by item ID —
  /// the reference set φ of the precision metric.
  std::vector<std::pair<ItemId, double>> TopKSignificant(size_t k,
                                                         double alpha,
                                                         double beta) const;

  size_t num_distinct() const { return items_.size(); }
  uint64_t total_records() const { return total_records_; }
  const std::unordered_map<ItemId, Info>& items() const { return items_; }

 private:
  std::unordered_map<ItemId, Info> items_;
  uint64_t total_records_ = 0;
};

}  // namespace ltc

#endif  // LTC_METRICS_GROUND_TRUTH_H_
