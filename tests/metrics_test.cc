// Unit tests for ground truth and the precision / ARE metrics.

#include <vector>

#include <gtest/gtest.h>

#include "metrics/evaluate.h"
#include "metrics/ground_truth.h"
#include "stream/stream.h"

namespace ltc {
namespace {

Stream TinyStream() {
  // 2 periods over [0, 10): item 1 in both periods (f=3), item 2 only in
  // period 0 (f=2), item 3 once in period 1.
  std::vector<Record> records = {
      {1, 0.5}, {2, 1.0}, {2, 2.0}, {1, 4.0}, {1, 6.0}, {3, 8.0},
  };
  return Stream(std::move(records), 2, 10.0);
}

TEST(GroundTruth, CountsFrequencyAndPersistency) {
  GroundTruth truth = GroundTruth::Compute(TinyStream());
  EXPECT_EQ(truth.Frequency(1), 3u);
  EXPECT_EQ(truth.Persistency(1), 2u);
  EXPECT_EQ(truth.Frequency(2), 2u);
  EXPECT_EQ(truth.Persistency(2), 1u);
  EXPECT_EQ(truth.Frequency(3), 1u);
  EXPECT_EQ(truth.Persistency(3), 1u);
  EXPECT_EQ(truth.Frequency(404), 0u);
  EXPECT_EQ(truth.Persistency(404), 0u);
  EXPECT_EQ(truth.num_distinct(), 3u);
  EXPECT_EQ(truth.total_records(), 6u);
}

TEST(GroundTruth, SignificanceCombinesWeights) {
  GroundTruth truth = GroundTruth::Compute(TinyStream());
  EXPECT_DOUBLE_EQ(truth.Significance(1, 1.0, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(truth.Significance(1, 0.0, 1.0), 2.0);
  EXPECT_DOUBLE_EQ(truth.Significance(1, 10.0, 1.0), 32.0);
}

TEST(GroundTruth, TopKSignificantOrdering) {
  GroundTruth truth = GroundTruth::Compute(TinyStream());
  auto top = truth.TopKSignificant(2, 1.0, 1.0);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].first, 1u);  // s=5
  EXPECT_EQ(top[1].first, 2u);  // s=3
  // k beyond the universe truncates at the universe size.
  EXPECT_EQ(truth.TopKSignificant(10, 1.0, 1.0).size(), 3u);
}

TEST(Evaluate, PerfectReportScoresPerfectly) {
  GroundTruth truth = GroundTruth::Compute(TinyStream());
  std::vector<TopKEntry> reported = {{1, 5.0}, {2, 3.0}};
  EvalResult r = Evaluate(reported, truth, 2, 1.0, 1.0);
  EXPECT_DOUBLE_EQ(r.precision, 1.0);
  EXPECT_DOUBLE_EQ(r.are, 0.0);
  EXPECT_DOUBLE_EQ(r.aae, 0.0);
}

TEST(Evaluate, WrongSetLowersPrecision) {
  GroundTruth truth = GroundTruth::Compute(TinyStream());
  std::vector<TopKEntry> reported = {{1, 5.0}, {3, 2.0}};  // 3 not in top-2
  EvalResult r = Evaluate(reported, truth, 2, 1.0, 1.0);
  EXPECT_DOUBLE_EQ(r.precision, 0.5);
}

TEST(Evaluate, AreAveragesRelativeErrorOverK) {
  GroundTruth truth = GroundTruth::Compute(TinyStream());
  // Item 1 off by 1 of 5 (rel 0.2); item 2 exact.
  std::vector<TopKEntry> reported = {{1, 4.0}, {2, 3.0}};
  EvalResult r = Evaluate(reported, truth, 2, 1.0, 1.0);
  EXPECT_NEAR(r.are, 0.1, 1e-12);   // (0.2 + 0) / 2
  EXPECT_NEAR(r.aae, 0.5, 1e-12);   // (1 + 0) / 2
}

TEST(Evaluate, ShortReportPenalizedByK) {
  GroundTruth truth = GroundTruth::Compute(TinyStream());
  std::vector<TopKEntry> reported = {{1, 5.0}};  // only one of k=2
  EvalResult r = Evaluate(reported, truth, 2, 1.0, 1.0);
  EXPECT_DOUBLE_EQ(r.precision, 0.5);
  EXPECT_EQ(r.reported, 1u);
}

TEST(Evaluate, EmptyReportScoresZero) {
  GroundTruth truth = GroundTruth::Compute(TinyStream());
  EvalResult r = Evaluate({}, truth, 2, 1.0, 1.0);
  EXPECT_DOUBLE_EQ(r.precision, 0.0);
  EXPECT_DOUBLE_EQ(r.are, 0.0);
}

TEST(Evaluate, PhantomItemContributesItsEstimate) {
  GroundTruth truth = GroundTruth::Compute(TinyStream());
  // Item 999 never appeared: relative error charged as the estimate.
  std::vector<TopKEntry> reported = {{999, 7.0}};
  EvalResult r = Evaluate(reported, truth, 1, 1.0, 1.0);
  EXPECT_DOUBLE_EQ(r.precision, 0.0);
  EXPECT_DOUBLE_EQ(r.are, 7.0);
}

}  // namespace
}  // namespace ltc
