// Tests for the telemetry subsystem (docs/TELEMETRY.md): the metrics
// registry contract (find-or-create, stable references, kind and name
// validation), log2 histogram bucket boundaries, exact exposition
// goldens for both formats, and a multi-thread hammer with exact final
// counts — the latter doubles as the tsan workload for the lock-free
// primitives.

#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "telemetry/exposition.h"
#include "telemetry/metrics.h"

namespace ltc {
namespace telemetry {
namespace {

TEST(MetricsRegistry, FindOrCreateReturnsStableReference) {
  MetricsRegistry registry;
  Counter& a = registry.CounterOf("requests_total", "Total requests.");
  a.Increment(7);
  Counter& b = registry.CounterOf("requests_total", "Total requests.");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(b.Value(), 7u);
  EXPECT_EQ(registry.num_families(), 1u);
}

TEST(MetricsRegistry, DistinctLabelsMakeDistinctSeriesInOneFamily) {
  MetricsRegistry registry;
  Counter& x = registry.CounterOf("hits_total", "Hits.", {{"shard", "0"}});
  Counter& y = registry.CounterOf("hits_total", "Hits.", {{"shard", "1"}});
  EXPECT_NE(&x, &y);
  EXPECT_EQ(registry.num_families(), 1u);
  x.Increment(2);
  y.Increment(5);
  EXPECT_EQ(registry.CounterOf("hits_total", "Hits.", {{"shard", "0"}}).Value(),
            2u);
  EXPECT_EQ(registry.CounterOf("hits_total", "Hits.", {{"shard", "1"}}).Value(),
            5u);
}

TEST(MetricsRegistry, KindMismatchThrowsLogicError) {
  MetricsRegistry registry;
  registry.CounterOf("mixed", "A counter.");
  EXPECT_THROW(registry.GaugeOf("mixed", "Now a gauge?"), std::logic_error);
  EXPECT_THROW(registry.HistogramOf("mixed", "Now a histogram?"),
               std::logic_error);
}

TEST(MetricsRegistry, InvalidNamesThrow) {
  MetricsRegistry registry;
  EXPECT_THROW(registry.CounterOf("9starts_with_digit", ""),
               std::invalid_argument);
  EXPECT_THROW(registry.CounterOf("has space", ""), std::invalid_argument);
  EXPECT_THROW(registry.CounterOf("", ""), std::invalid_argument);
  EXPECT_THROW(registry.CounterOf("ok_total", "", {{"9bad", "v"}}),
               std::invalid_argument);
  EXPECT_THROW(registry.CounterOf("ok_total", "", {{"colon:no", "v"}}),
               std::invalid_argument);
  // Colons are legal in metric names (recording-rule convention), and
  // label values are unrestricted (exposition escapes them).
  registry.CounterOf("ltc:derived_total", "");
  registry.CounterOf("ok_total", "", {{"path", "a\"b\\c\nd"}});
}

TEST(Gauge, SetAndAdd) {
  Gauge gauge;
  EXPECT_EQ(gauge.Value(), 0.0);
  gauge.Set(2.5);
  EXPECT_EQ(gauge.Value(), 2.5);
  gauge.Add(-1.0);
  EXPECT_EQ(gauge.Value(), 1.5);
}

TEST(Counter, SetFromSampleOverwrites) {
  Counter counter;
  counter.Increment(3);
  counter.SetFromSample(42);
  EXPECT_EQ(counter.Value(), 42u);
}

TEST(Histogram, BucketBoundaries) {
  // bucket i = values of bit-width i: 0 → bucket 0, [2^(i−1), 2^i − 1]
  // → bucket i, and everything >= 2^63 lands in the +Inf overflow.
  EXPECT_EQ(Histogram::BucketIndex(0), 0u);
  EXPECT_EQ(Histogram::BucketIndex(1), 1u);
  EXPECT_EQ(Histogram::BucketIndex(2), 2u);
  EXPECT_EQ(Histogram::BucketIndex(3), 2u);
  EXPECT_EQ(Histogram::BucketIndex(4), 3u);
  EXPECT_EQ(Histogram::BucketIndex((uint64_t{1} << 63) - 1), 63u);
  EXPECT_EQ(Histogram::BucketIndex(uint64_t{1} << 63), 64u);
  EXPECT_EQ(Histogram::BucketIndex(std::numeric_limits<uint64_t>::max()),
            64u);

  EXPECT_EQ(Histogram::BucketUpperBound(0), 0u);
  EXPECT_EQ(Histogram::BucketUpperBound(1), 1u);
  EXPECT_EQ(Histogram::BucketUpperBound(2), 3u);
  EXPECT_EQ(Histogram::BucketUpperBound(63), (uint64_t{1} << 63) - 1);
  EXPECT_EQ(Histogram::BucketUpperBound(64),
            std::numeric_limits<uint64_t>::max());
}

TEST(Histogram, RecordsZeroMaxAndOverflow) {
  Histogram histogram;
  histogram.Record(0);
  histogram.Record(std::numeric_limits<uint64_t>::max());
  histogram.Record(uint64_t{1} << 63);
  EXPECT_EQ(histogram.BucketCount(0), 1u);
  EXPECT_EQ(histogram.BucketCount(64), 2u);
  EXPECT_EQ(histogram.Count(), 3u);
  // Sum wraps modulo 2^64 by design: max + 2^63 + 0.
  EXPECT_EQ(histogram.Sum(),
            std::numeric_limits<uint64_t>::max() + (uint64_t{1} << 63));
}

TEST(Exposition, PrometheusTextGolden) {
  MetricsRegistry registry;
  registry.CounterOf("requests_total", "Total requests.", {{"path", "/x"}})
      .Increment(3);
  registry.CounterOf("requests_total", "Total requests.", {{"path", "/y"}})
      .Increment(1);
  registry.GaugeOf("temperature", "Current temperature.").Set(1.5);
  Histogram& histogram = registry.HistogramOf("latency_usec", "Latency.");
  histogram.Record(0);
  histogram.Record(1);
  histogram.Record(5);     // bit-width 3 → le="7"
  histogram.Record(1000);  // bit-width 10 → le="1023"

  EXPECT_EQ(ExpositionText(registry),
            "# HELP requests_total Total requests.\n"
            "# TYPE requests_total counter\n"
            "requests_total{path=\"/x\"} 3\n"
            "requests_total{path=\"/y\"} 1\n"
            "# HELP temperature Current temperature.\n"
            "# TYPE temperature gauge\n"
            "temperature 1.5\n"
            "# HELP latency_usec Latency.\n"
            "# TYPE latency_usec histogram\n"
            "latency_usec_bucket{le=\"0\"} 1\n"
            "latency_usec_bucket{le=\"1\"} 2\n"
            "latency_usec_bucket{le=\"7\"} 3\n"
            "latency_usec_bucket{le=\"1023\"} 4\n"
            "latency_usec_bucket{le=\"+Inf\"} 4\n"
            "latency_usec_sum 1006\n"
            "latency_usec_count 4\n");
}

TEST(Exposition, PrometheusEscapesLabelValuesAndHelp) {
  MetricsRegistry registry;
  registry
      .CounterOf("esc_total", "Help with \\ and\nnewline.",
                 {{"path", "a\"b\\c\nd"}})
      .Increment(1);
  EXPECT_EQ(ExpositionText(registry),
            "# HELP esc_total Help with \\\\ and\\nnewline.\n"
            "# TYPE esc_total counter\n"
            "esc_total{path=\"a\\\"b\\\\c\\nd\"} 1\n");
}

TEST(Exposition, OverflowSampleOnlyInInfBucket) {
  MetricsRegistry registry;
  registry.HistogramOf("big_bytes", "Big.")
      .Record(std::numeric_limits<uint64_t>::max());
  const std::string text = ExpositionText(registry);
  EXPECT_NE(text.find("big_bytes_bucket{le=\"+Inf\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("big_bytes_count 1\n"), std::string::npos);
  // No finite bucket line: the only sample is past every finite bound.
  EXPECT_EQ(text.find("big_bytes_bucket{le=\"0\""), std::string::npos);
}

TEST(Exposition, JsonGolden) {
  MetricsRegistry registry;
  registry.CounterOf("c_total", "Help.").Increment(2);
  registry.HistogramOf("h", "H.").Record(3);

  EXPECT_EQ(
      ExpositionJson(registry),
      "{\n"
      "  \"families\": [\n"
      "    {\"name\": \"c_total\", \"type\": \"counter\", \"help\": "
      "\"Help.\", \"series\": [\n"
      "      {\"labels\": {}, \"value\": 2}\n"
      "    ]},\n"
      "    {\"name\": \"h\", \"type\": \"histogram\", \"help\": \"H.\", "
      "\"series\": [\n"
      "      {\"labels\": {}, \"count\": 1, \"sum\": 3, \"buckets\": "
      "[{\"le\": \"3\", \"cumulative\": 1}, {\"le\": \"+Inf\", "
      "\"cumulative\": 1}]}\n"
      "    ]}\n"
      "  ]\n"
      "}\n");
}

TEST(Exposition, EmptyRegistry) {
  MetricsRegistry registry;
  EXPECT_EQ(ExpositionText(registry), "");
  EXPECT_EQ(ExpositionJson(registry), "{\n  \"families\": []\n}\n");
}

// Concurrency hammer: exact final values prove no lost updates; running
// exposition concurrently with the writers exercises the snapshot reads
// under tsan.
TEST(Telemetry, ConcurrentHammerHasExactCounts) {
  constexpr int kThreads = 4;
  constexpr int kIters = 25'000;
  MetricsRegistry registry;
  Counter& counter = registry.CounterOf("hammer_total", "Hammered.");
  Gauge& gauge = registry.GaugeOf("hammer_gauge", "Hammered.");
  Histogram& histogram = registry.HistogramOf("hammer_usec", "Hammered.");

  std::vector<std::thread> threads;
  threads.reserve(kThreads + 1);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        counter.Increment();
        gauge.Add(1.0);
        histogram.Record(static_cast<uint64_t>((t * kIters + i) % 4096));
      }
    });
  }
  // A reader racing the writers: output content is unspecified, but the
  // reads must be clean (this is the tsan assertion).
  threads.emplace_back([&] {
    for (int i = 0; i < 50; ++i) {
      (void)ExpositionText(registry);
      (void)ExpositionJson(registry);
    }
  });
  for (auto& thread : threads) thread.join();

  constexpr uint64_t kTotal = uint64_t{kThreads} * kIters;
  EXPECT_EQ(counter.Value(), kTotal);
  EXPECT_EQ(gauge.Value(), static_cast<double>(kTotal));
  EXPECT_EQ(histogram.Count(), kTotal);
  uint64_t from_buckets = 0;
  for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
    from_buckets += histogram.BucketCount(i);
  }
  EXPECT_EQ(from_buckets, kTotal);
}

}  // namespace
}  // namespace telemetry
}  // namespace ltc
