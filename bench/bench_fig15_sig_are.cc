// Fig. 15 — ARE on finding significant items (§V-H). Same configurations
// as Fig. 14, reporting ARE.

#include "bench_common.h"

namespace ltc {
namespace bench {

void Run() {
  const std::vector<size_t> memories = {25, 50, 100, 200, 300};
  const std::vector<std::pair<double, double>> mixes = {
      {1.0, 10.0}, {1.0, 1.0}, {10.0, 1.0}};

  const char* panels[] = {"(b) CAIDA", "(c) Network", "(d) Social"};
  auto datasets = LoadAllDatasets();
  for (size_t i = 0; i < datasets.size(); ++i) {
    for (auto [alpha, beta] : mixes) {
      auto factory = [&, alpha = alpha, beta = beta](size_t memory_bytes,
                                                     size_t k) {
        return SignificantSuite(memory_bytes, k, datasets[i].stream, alpha,
                                beta);
      };
      std::string mix = std::to_string(static_cast<int>(alpha)) + ":" +
                        std::to_string(static_cast<int>(beta));
      PrintFigure(std::string("Fig 15") + panels[i] +
                      ": ARE vs memory, significant items (k=100, a:b=" +
                      mix + ")",
                  SweepMemory(datasets[i], memories, factory, 100, alpha,
                              beta, Metric::kAre));
    }
  }
}

}  // namespace bench
}  // namespace ltc

int main() { ltc::bench::Run(); }
