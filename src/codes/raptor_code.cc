#include "codes/raptor_code.h"

#include <algorithm>
#include <cassert>

#include "common/hash.h"

namespace ltc {

RaptorCode::RaptorCode(uint32_t num_source_blocks, uint32_t num_parity_blocks,
                       uint64_t seed, uint32_t parity_degree,
                       uint32_t inner_max_degree)
    : num_source_(num_source_blocks),
      num_parity_(num_parity_blocks),
      seed_(seed),
      parity_degree_(std::min(parity_degree, num_source_blocks)),
      lt_(num_source_blocks + num_parity_blocks, 0.1, 0.5,
          inner_max_degree) {
  assert(num_source_blocks >= 1);
  assert(parity_degree >= 1);
}

std::vector<uint32_t> RaptorCode::ParityNeighbours(
    uint32_t parity_index) const {
  assert(parity_index < num_parity_);
  // Seeded distinct source indices, same rejection scheme as the LT
  // neighbour derivation.
  uint64_t state = Mix64(seed_ ^ (0xfeedULL + parity_index));
  std::vector<uint32_t> out;
  out.reserve(parity_degree_);
  while (out.size() < parity_degree_) {
    state = Mix64(state);
    uint32_t idx = static_cast<uint32_t>(FastRange64(state, num_source_));
    if (std::find(out.begin(), out.end(), idx) == out.end()) {
      out.push_back(idx);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<uint64_t> RaptorCode::Precode(
    const std::vector<uint64_t>& source) const {
  assert(source.size() == num_source_);
  std::vector<uint64_t> intermediate = source;
  intermediate.reserve(num_source_ + num_parity_);
  for (uint32_t p = 0; p < num_parity_; ++p) {
    uint64_t parity = 0;
    for (uint32_t s : ParityNeighbours(p)) parity ^= source[s];
    intermediate.push_back(parity);
  }
  return intermediate;
}

uint64_t RaptorCode::EncodeIntermediate(
    const std::vector<uint64_t>& intermediate, uint64_t symbol_seed) const {
  return lt_.Encode(intermediate, symbol_seed);
}

uint64_t RaptorCode::Encode(const std::vector<uint64_t>& source,
                            uint64_t symbol_seed) const {
  return lt_.Encode(Precode(source), symbol_seed);
}

std::optional<std::vector<uint64_t>> RaptorCode::Decode(
    const std::vector<LtCode::Symbol>& symbols) const {
  std::vector<GraphSymbol> graph;
  graph.reserve(symbols.size() + num_parity_);
  for (const LtCode::Symbol& s : symbols) {
    graph.push_back({lt_.NeighboursOf(s.seed), s.value});
  }
  // Parity constraints: parity_p XOR its sources == 0 — zero-valued
  // symbols over the intermediate index space.
  for (uint32_t p = 0; p < num_parity_; ++p) {
    GraphSymbol constraint;
    constraint.neighbours = ParityNeighbours(p);
    constraint.neighbours.push_back(num_source_ + p);
    constraint.value = 0;
    graph.push_back(std::move(constraint));
  }

  PartialDecodeResult partial =
      PeelingDecodePartial(num_source_ + num_parity_, std::move(graph));
  // Success needs only the SOURCE blocks; unresolved parities are fine.
  for (uint32_t s = 0; s < num_source_; ++s) {
    if (!partial.resolved[s]) return std::nullopt;
  }
  partial.blocks.resize(num_source_);
  return std::move(partial.blocks);
}

}  // namespace ltc
