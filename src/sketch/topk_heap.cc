#include "sketch/topk_heap.h"

#include <algorithm>
#include <cassert>

namespace ltc {

TopKHeap::TopKHeap(size_t k) : capacity_(k) {
  assert(k >= 1);
  heap_.reserve(k);
  index_.reserve(k * 2);
}

double TopKHeap::ValueOf(ItemId item) const {
  auto it = index_.find(item);
  return it == index_.end() ? 0.0 : heap_[it->second].value;
}

bool TopKHeap::Offer(ItemId item, double value) {
  auto it = index_.find(item);
  if (it != index_.end()) {
    size_t pos = it->second;
    double old = heap_[pos].value;
    heap_[pos].value = value;
    if (value < old) {
      SiftUp(pos);
    } else {
      SiftDown(pos);
    }
    return true;
  }
  if (heap_.size() < capacity_) {
    heap_.push_back({item, value});
    index_[item] = heap_.size() - 1;
    SiftUp(heap_.size() - 1);
    return true;
  }
  if (value <= heap_[0].value) return false;
  index_.erase(heap_[0].item);
  heap_[0] = {item, value};
  index_[item] = 0;
  SiftDown(0);
  return true;
}

std::vector<TopKHeap::Entry> TopKHeap::SortedEntries() const {
  std::vector<Entry> out = heap_;
  std::sort(out.begin(), out.end(), [](const Entry& a, const Entry& b) {
    if (a.value != b.value) return a.value > b.value;
    return a.item < b.item;
  });
  return out;
}

void TopKHeap::Place(size_t pos, Entry entry) {
  heap_[pos] = entry;
  index_[entry.item] = pos;
}

void TopKHeap::SiftUp(size_t pos) {
  Entry moving = heap_[pos];
  while (pos > 0) {
    size_t parent = (pos - 1) / 2;
    if (heap_[parent].value <= moving.value) break;
    Place(pos, heap_[parent]);
    pos = parent;
  }
  Place(pos, moving);
}

void TopKHeap::SiftDown(size_t pos) {
  Entry moving = heap_[pos];
  size_t n = heap_.size();
  while (true) {
    size_t child = 2 * pos + 1;
    if (child >= n) break;
    if (child + 1 < n && heap_[child + 1].value < heap_[child].value) {
      ++child;
    }
    if (heap_[child].value >= moving.value) break;
    Place(pos, heap_[child]);
    pos = child;
  }
  Place(pos, moving);
}

}  // namespace ltc
