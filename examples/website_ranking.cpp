// Use Case 2 (paper §I): website popularity ranking.
//
// Popularity has two axes: how often a site is visited (frequency) and
// whether it stays popular (persistency). This example feeds a day of
// string-keyed access logs — steady sites, a viral one-hour wonder, and a
// long tail — through a StringInterner into LTC, and prints the live
// popularity board under s = f + 50·p.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/ltc.h"
#include "stream/interner.h"

namespace {

struct Hit {
  std::string site;
  double time;  // seconds within the day
};

std::vector<Hit> SynthesizeDay() {
  ltc::Rng rng(99);
  std::vector<Hit> hits;
  constexpr double kHour = 3600.0;

  // Steady head sites, visited all day at different rates.
  const struct {
    const char* name;
    int per_hour;
  } steady[] = {
      {"news.example.com", 900}, {"mail.example.com", 700},
      {"wiki.example.org", 450}, {"shop.example.com", 300},
      {"docs.example.dev", 150},
  };
  for (int hour = 0; hour < 24; ++hour) {
    for (const auto& site : steady) {
      for (int i = 0; i < site.per_hour; ++i) {
        hits.push_back({site.name, (hour + rng.UniformDouble()) * kHour});
      }
    }
  }

  // The viral wonder: enormous for one hour (hour 13), silent otherwise.
  for (int i = 0; i < 30'000; ++i) {
    hits.push_back({"viral.example.gg", (13 + rng.UniformDouble()) * kHour});
  }

  // Long tail: 20k obscure sites with a hit or two.
  for (int i = 0; i < 40'000; ++i) {
    std::string name =
        "site" + std::to_string(rng.Uniform(20'000)) + ".example.net";
    hits.push_back({std::move(name), rng.UniformDouble() * 24 * kHour});
  }

  std::sort(hits.begin(), hits.end(),
            [](const Hit& a, const Hit& b) { return a.time < b.time; });
  return hits;
}

}  // namespace

int main() {
  std::vector<Hit> day = SynthesizeDay();
  std::printf("replaying %zu page hits across one day...\n\n", day.size());

  ltc::StringInterner interner;
  ltc::LtcConfig config;
  config.memory_bytes = 16 * 1024;
  config.alpha = 1.0;
  config.beta = 50.0;  // one hour of sustained presence ≈ 50 visits
  config.period_mode = ltc::PeriodMode::kTimeBased;
  config.period_seconds = 3600.0;  // hourly periods
  ltc::Ltc table(config);

  for (const Hit& hit : day) {
    table.Insert(interner.Intern(hit.site), hit.time);
  }
  table.Finalize();

  std::printf("%-22s %8s %14s %13s\n", "site", "visits", "hours active",
              "popularity");
  for (const auto& report : table.TopK(8)) {
    std::printf("%-22s %8llu %14llu %13.0f\n",
                interner.Name(report.item).c_str(),
                static_cast<unsigned long long>(report.frequency),
                static_cast<unsigned long long>(report.persistency),
                report.significance);
  }
  std::printf(
      "\nNote how viral.example.gg ranks on raw visits but is outranked\n"
      "by steady sites once persistency weighs in.\n");
  return 0;
}
