// Fig. 10 — ARE on finding frequent items (§V-F), α=1 β=0. Same
// configurations as Fig. 9, reporting average relative error instead of
// precision: (a)–(c) ARE vs memory, (d) ARE vs k (Network, 100 KB).

#include "bench_common.h"

namespace ltc {
namespace bench {

void Run() {
  const std::vector<size_t> memories = {5, 10, 20, 30, 40, 50};

  const char* panels[] = {"(a) CAIDA", "(b) Network", "(c) Social"};
  auto datasets = LoadAllDatasets();
  for (size_t i = 0; i < datasets.size(); ++i) {
    auto factory = [&](size_t memory_bytes, size_t k) {
      return FrequentSuite(memory_bytes, k, datasets[i].stream);
    };
    PrintFigure(std::string("Fig 10") + panels[i] +
                    ": ARE vs memory, frequent items (k=100)",
                SweepMemory(datasets[i], memories, factory, 100, 1.0, 0.0,
                            Metric::kAre));
  }

  auto network_factory = [&](size_t memory_bytes, size_t k) {
    return FrequentSuite(memory_bytes, k, datasets[1].stream);
  };
  PrintFigure("Fig 10(d): ARE vs k, frequent items (Network, 100KB)",
              SweepK(datasets[1], 100 * 1024, {100, 250, 500, 750, 1000},
                     network_factory, 1.0, 0.0, Metric::kAre));
}

}  // namespace bench
}  // namespace ltc

int main() { ltc::bench::Run(); }
