// Bridges the core-layer LtcMetricsSink (plain per-table counters the
// hot path increments) into a MetricsRegistry as the ltc_core_*
// families. Header-only dependency on core/ltc_metrics_sink.h — no
// link-time coupling between ltc_telemetry and ltc_core.
//
// Call after the table is quiescent (single-threaded use, or after
// IngestPipeline::Flush()/Stop() for per-shard sinks): publishing
// samples the sink's monotone fields with Counter::SetFromSample, so
// repeated publishes of a growing sink are always consistent.

#ifndef LTC_TELEMETRY_LTC_COLLECTORS_H_
#define LTC_TELEMETRY_LTC_COLLECTORS_H_

#include <cstddef>

#include "core/ltc_metrics_sink.h"
#include "telemetry/metrics.h"

namespace ltc {
namespace telemetry {

/// Publishes `sink` into `registry` under the ltc_core_* families (see
/// docs/TELEMETRY.md for the catalog), with `labels` attached to every
/// series (e.g. {{"shard", "0"}}; pass {} for a single table). When
/// `num_cells` > 0, also publishes ltc_core_occupancy_ratio =
/// occupied_cells / num_cells.
void PublishLtcSink(MetricsRegistry& registry, const LtcMetricsSink& sink,
                    const Labels& labels = {}, size_t num_cells = 0);

}  // namespace telemetry
}  // namespace ltc

#endif  // LTC_TELEMETRY_LTC_COLLECTORS_H_
