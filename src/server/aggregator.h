// The aggregation tier's merge brain (docs/SERVING.md "Aggregation
// tier"). Ingest nodes push flush-barrier sketch images over LTCQ
// (PUSH_SKETCH); an AggregatorCore folds them into one merged LTC view
// and republishes it through the ReadSnapshotHub, so the same query
// front end that serves a single node serves the fleet.
//
// Delivery model — the whole point of this class: push clients retry on
// ANY failure (at-least-once), so the aggregator must make duplicated,
// reordered and re-sent pushes harmless. Two properties achieve that:
//
//   * Pushes are CUMULATIVE. Each image is the node's entire sketch at
//     a barrier, not a delta, so applying a push is "replace this
//     node's contribution", never "add to it". Replays cannot
//     double-count.
//   * The merged aggregate is recomputed by folding the per-node images
//     in node_id order. The result is a pure function of {newest image
//     per node}, so it is bit-identical no matter how many times a push
//     was retried or in what order nodes' pushes interleaved (pinned by
//     tests/aggregation_chaos_test.cc).
//
// Epoch rules, per node: epoch_seq must be >= 1 and is compared against
// the newest applied epoch. Newer → applied; equal → acknowledged as a
// duplicate (kOk, applied=0) without touching the aggregate; older →
// kErrStaleEpoch, a terminal rejection the client must not retry.
//
// Degradation: a node that stops pushing never wedges anything — its
// last image keeps contributing, its STATS row ages, and once the age
// passes `stale_after_sec` the row is flagged and the
// ltc_agg_node_staleness_sec gauge shows it. Operators alert on the
// gauge; queries keep being answered either way.
//
// Threading: single-driver, by design the QueryServer event-loop thread
// (dispatch calls ApplyPush, the loop calls Tick between polls). That
// makes the hub's single-publisher contract hold for free. Read-only
// accessors (SerializeMerged, NodeRows) are for tests and for callers
// that own the loop, after Stop().

#ifndef LTC_SERVER_AGGREGATOR_H_
#define LTC_SERVER_AGGREGATOR_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/clock.h"
#include "core/ltc.h"
#include "core/read_snapshot.h"
#include "server/protocol.h"
#include "telemetry/metrics.h"

namespace ltc {
namespace server {

/// What one PUSH_SKETCH did. `status` maps straight onto the wire
/// response; `applied` distinguishes a merge from a duplicate ack.
struct PushOutcome {
  Status status = Status::kOk;
  bool applied = false;     // meaningful when status == kOk
  uint64_t epoch_seq = 0;   // echoed in the ack
  std::string detail;       // error detail for non-kOk statuses
};

class AggregatorCore {
 public:
  /// `config` fixes the aggregate's shape: every pushed sketch must
  /// CanMergeWith a table of this config or the push is rejected with
  /// kErrShapeMismatch. `hub` (may be null in library tests) receives
  /// the merged image after every applied push. `clock` defaults to
  /// SystemClock; tests inject a FakeClock to script staleness.
  AggregatorCore(const LtcConfig& config, ReadSnapshotHub* hub,
                 uint64_t stale_after_sec = 60, Clock* clock = nullptr);

  AggregatorCore(const AggregatorCore&) = delete;
  AggregatorCore& operator=(const AggregatorCore&) = delete;

  /// Registers ltc_agg_* families. Call before the serving loop starts;
  /// the registry must outlive this object.
  void AttachMetrics(telemetry::MetricsRegistry* registry);

  /// Applies one decoded PUSH_SKETCH. Total: every input yields a typed
  /// outcome, never UB — a sketch that fails to deserialize or to merge
  /// leaves the aggregate exactly as it was.
  PushOutcome ApplyPush(const PushRequest& push);

  /// Periodic upkeep (staleness gauge refresh). Cheap; the server loop
  /// calls it between polls.
  void Tick();

  /// Per-node delivery state for STATS, in node_id order.
  std::vector<StatsNodeRow> NodeRows() const;

  /// Serialized bytes of the current merged aggregate — the oracle hook
  /// for bit-identity assertions. Empty string before the first merge.
  std::string SerializeMerged() const;

  uint64_t merges_total() const { return merges_total_; }
  uint64_t rejects_total() const { return rejects_total_; }
  uint64_t total_records() const { return total_records_; }
  size_t num_nodes() const { return nodes_.size(); }
  uint64_t stale_after_sec() const { return stale_after_sec_; }

 private:
  struct NodeState {
    uint64_t last_epoch = 0;
    uint64_t records = 0;
    uint64_t last_push_usec = 0;
    Ltc sketch;

    explicit NodeState(Ltc s) : sketch(std::move(s)) {}
  };

  PushOutcome Reject(Status status, std::string detail);
  /// Refolds nodes_ into merged_ and republishes. The rebuild makes the
  /// aggregate a pure function of the node images (see file comment);
  /// per-push cost is O(nodes × table), dwarfed by the network hop.
  void RebuildAndPublish();
  uint64_t AgeSecOf(const NodeState& node, uint64_t now_usec) const;

  const LtcConfig config_;
  const Ltc reference_;  // empty table: the shape every push must match
  ReadSnapshotHub* hub_;
  Clock* clock_;
  const uint64_t stale_after_sec_;

  std::map<uint64_t, NodeState> nodes_;  // node_id order = fold order
  Ltc merged_;
  bool has_merged_ = false;
  uint64_t total_records_ = 0;
  uint64_t merges_total_ = 0;
  uint64_t rejects_total_ = 0;

  telemetry::MetricsRegistry* metrics_ = nullptr;
  telemetry::Counter* merges_counter_ = nullptr;
  telemetry::Counter* rejects_counter_ = nullptr;
  telemetry::Counter* duplicates_counter_ = nullptr;
  telemetry::Gauge* nodes_gauge_ = nullptr;
  std::map<uint64_t, telemetry::Gauge*> staleness_gauges_;  // per node
};

}  // namespace server
}  // namespace ltc

#endif  // LTC_SERVER_AGGREGATOR_H_
