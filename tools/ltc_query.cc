// ltc_query — command-line client for a --serve'd ltc_cli
// (docs/SERVING.md). One TCP connection, one request per verb given on
// the command line (pipelined in order), human-readable output.
//
//   ltc_query --port P [--host H] [--timeout-ms N] <verb> [arg] [...]
//
// verbs:
//   ping            liveness + current snapshot seq / record count
//   topk K          the K most significant items
//   sig KEY         estimated significance of KEY
//   freq KEY        estimated frequency of KEY
//   pers KEY        estimated persistency of KEY
//   stats           service stats (snapshot seq, records, memory, shards,
//                   aggregation node rows when the server aggregates)
//   trace           the server's flight-recorder dump as Chrome
//                   trace-event JSON (requires the server to run with
//                   --trace-out; open the output in Perfetto)
//
// --trace appends the v3 trace-context extension to every request, so
// the server-side spans join one client-chosen trace (its trace_id is
// printed to stderr for grepping the server's dump). Only send it to
// v3 servers — older ones answer extended frames with kErrMalformed.
//
// Every socket step (connect, send, each response read) runs under
// --timeout-ms (default 5000, 0 = wait forever), so a hung or half-open
// server costs one deadline, never a hang.
//
// exit status: 0 = every request answered kOk; 2 = usage error;
// 3 = the server answered at least one typed error frame;
// 4 = connection / transport failure (includes truncated responses);
// 5 = a deadline expired (connect or response timeout).

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "server/protocol.h"

namespace ltc {
namespace server {
namespace {

struct PendingRequest {
  Opcode opcode;
  std::string payload;  // request payload (framed at send time, after
                        // the optional --trace extension is appended)
  std::string label;    // "topk 5", "sig alpha", ... for output headers
};

/// Set by any expired deadline so Main can exit 5 instead of 4.
bool g_timed_out = false;

int Usage(const char* message) {
  if (message != nullptr) std::fprintf(stderr, "ltc_query: %s\n", message);
  std::fputs(
      "usage: ltc_query --port P [--host H] [--timeout-ms N] [--trace] "
      "<verb> [arg] [...]\n"
      "verbs: ping | topk K | sig KEY | freq KEY | pers KEY | stats | "
      "trace\n"
      "--trace tags every request with a fresh trace context (v3 "
      "servers only); the trace_id is printed to stderr\n",
      stderr);
  return 2;
}

uint64_t NowMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// SplitMix64 finalizer over a seed mixed with the clock — good enough
/// for a client-chosen trace id that must not collide with server ids.
uint64_t MixId(uint64_t seed) {
  uint64_t z = (seed << 32) ^ NowMicros();
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Polls `fd` for `events` until the absolute deadline (0 = forever).
bool PollUntil(int fd, short events, uint64_t deadline_usec) {
  while (true) {
    int timeout_ms = -1;
    if (deadline_usec != 0) {
      const uint64_t now = NowMicros();
      if (now >= deadline_usec) return false;
      const uint64_t remaining_ms = (deadline_usec - now) / 1'000;
      timeout_ms = static_cast<int>(remaining_ms > 0 ? remaining_ms : 1);
    }
    pollfd pfd{fd, events, 0};
    const int ready = ::poll(&pfd, 1, timeout_ms);
    if (ready > 0) return (pfd.revents & (events | POLLHUP | POLLERR)) != 0;
    if (ready == 0) {
      g_timed_out = true;
      return false;
    }
    if (errno != EINTR) return false;
  }
}

uint64_t Deadline(uint64_t timeout_usec) {
  return timeout_usec == 0 ? 0 : NowMicros() + timeout_usec;
}

int Connect(const std::string& host, uint16_t port, uint64_t timeout_usec,
            std::string* error) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    *error = std::string("socket: ") + std::strerror(errno);
    return -1;
  }
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) != 0) {
    *error = std::string("fcntl: ") + std::strerror(errno);
    ::close(fd);
    return -1;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    *error = "bad host address '" + host + "' (numeric IPv4 only)";
    ::close(fd);
    return -1;
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    if (errno != EINPROGRESS) {
      *error = std::string("connect: ") + std::strerror(errno);
      ::close(fd);
      return -1;
    }
    if (!PollUntil(fd, POLLOUT, Deadline(timeout_usec))) {
      *error = g_timed_out ? "connect timed out"
                           : std::string("connect: ") + std::strerror(errno);
      ::close(fd);
      return -1;
    }
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 || err != 0) {
      *error = std::string("connect: ") + std::strerror(err != 0 ? err : errno);
      ::close(fd);
      return -1;
    }
  }
  return fd;
}

bool SendAll(int fd, std::string_view bytes, uint64_t timeout_usec,
             std::string* error) {
  const uint64_t deadline = Deadline(timeout_usec);
  size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n =
        ::send(fd, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        if (!PollUntil(fd, POLLOUT, deadline)) {
          *error = g_timed_out ? "send timed out"
                               : std::string("send: ") + std::strerror(errno);
          return false;
        }
        continue;
      }
      *error = std::string("send: ") + std::strerror(errno);
      return false;
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

/// Reads one complete response payload under the per-response deadline.
std::optional<std::string> RecvFrame(int fd, FrameParser& parser,
                                     uint64_t timeout_usec,
                                     std::string* error) {
  const uint64_t deadline = Deadline(timeout_usec);
  while (true) {
    if (auto payload = parser.Next()) return payload;
    if (parser.oversized()) {
      *error = "server sent an oversized frame";
      return std::nullopt;
    }
    char buf[16384];
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n == 0) {
      *error = "connection closed mid-response";
      return std::nullopt;
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        if (!PollUntil(fd, POLLIN, deadline)) {
          *error = g_timed_out ? "response timed out"
                               : std::string("recv: ") + std::strerror(errno);
          return std::nullopt;
        }
        continue;
      }
      *error = std::string("recv: ") + std::strerror(errno);
      return std::nullopt;
    }
    parser.Feed(std::string_view(buf, static_cast<size_t>(n)));
  }
}

void PrintResponse(const PendingRequest& request,
                   const DecodedResponse& response) {
  switch (request.opcode) {
    case Opcode::kPing:
      std::printf("pong snapshot_seq=%llu records=%llu\n",
                  static_cast<unsigned long long>(response.snapshot_seq),
                  static_cast<unsigned long long>(response.records));
      return;
    case Opcode::kTopK:
      std::printf("# %s: %zu item(s)\n", request.label.c_str(),
                  response.topk.size());
      std::printf("%-24s %12s %12s %14s\n", "item", "frequency",
                  "persistency", "significance");
      for (const TopKEntry& entry : response.topk) {
        std::printf("%-24s %12llu %12llu %14g\n", entry.key.c_str(),
                    static_cast<unsigned long long>(entry.frequency),
                    static_cast<unsigned long long>(entry.persistency),
                    entry.significance);
      }
      return;
    case Opcode::kEstimateSignificance:
      std::printf("%s = %g\n", request.label.c_str(), response.value_double);
      return;
    case Opcode::kEstimateFrequency:
    case Opcode::kEstimatePersistency:
      std::printf("%s = %llu\n", request.label.c_str(),
                  static_cast<unsigned long long>(response.value_u64));
      return;
    case Opcode::kStats:
      std::printf(
          "stats snapshot_seq=%llu records=%llu memory_bytes=%llu "
          "shards=%u protocol_version=%u\n",
          static_cast<unsigned long long>(response.stats.snapshot_seq),
          static_cast<unsigned long long>(response.stats.records),
          static_cast<unsigned long long>(response.stats.memory_bytes),
          response.stats.num_shards, response.stats.protocol_version);
      for (const StatsNodeRow& row : response.stats.nodes) {
        std::printf("node %llu last_epoch=%llu age_sec=%llu stale=%u\n",
                    static_cast<unsigned long long>(row.node_id),
                    static_cast<unsigned long long>(row.last_epoch),
                    static_cast<unsigned long long>(row.age_sec), row.stale);
      }
      return;
    case Opcode::kPushSketch:
      // ltc_query never pushes (that is ltc_cli --push-to's job), but
      // the switch stays total over the protocol's opcodes.
      std::printf("push ack epoch=%llu applied=%d\n",
                  static_cast<unsigned long long>(response.push_epoch),
                  response.push_applied ? 1 : 0);
      return;
    case Opcode::kDumpTrace:
      // Chrome trace-event JSON verbatim — pipe to a file and open it
      // in Perfetto. A trailing newline keeps shells happy.
      std::fwrite(response.trace_json.data(), 1, response.trace_json.size(),
                  stdout);
      std::fputc('\n', stdout);
      return;
  }
}

int Main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  int32_t port = -1;
  uint64_t timeout_usec = 5'000'000;
  bool with_trace = false;
  std::vector<PendingRequest> requests;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* what) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "ltc_query: %s needs a value\n", what);
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      Usage(nullptr);
      return 0;
    } else if (arg == "--port") {
      const char* value = next("--port");
      if (value == nullptr) return 2;
      char* end = nullptr;
      const unsigned long parsed = std::strtoul(value, &end, 10);
      if (end == value || *end != '\0' || parsed == 0 || parsed > 65535) {
        return Usage("bad --port (need 1..65535)");
      }
      port = static_cast<int32_t>(parsed);
    } else if (arg == "--host") {
      const char* value = next("--host");
      if (value == nullptr) return 2;
      host = value;
    } else if (arg == "--timeout-ms") {
      const char* value = next("--timeout-ms");
      if (value == nullptr) return 2;
      char* end = nullptr;
      const unsigned long parsed = std::strtoul(value, &end, 10);
      if (end == value || *end != '\0') {
        return Usage("bad --timeout-ms (milliseconds, 0 = no timeout)");
      }
      timeout_usec = static_cast<uint64_t>(parsed) * 1'000;
    } else if (arg == "--trace") {
      with_trace = true;
    } else if (arg == "ping") {
      requests.push_back({Opcode::kPing, EncodePingRequest(), "ping"});
    } else if (arg == "stats") {
      requests.push_back({Opcode::kStats, EncodeStatsRequest(), "stats"});
    } else if (arg == "trace") {
      requests.push_back(
          {Opcode::kDumpTrace, EncodeDumpTraceRequest(), "trace"});
    } else if (arg == "topk") {
      const char* value = next("topk");
      if (value == nullptr) return 2;
      char* end = nullptr;
      const unsigned long k = std::strtoul(value, &end, 10);
      if (end == value || *end != '\0' || k == 0 || k > kMaxTopK) {
        return Usage("bad topk K");
      }
      requests.push_back({Opcode::kTopK,
                          EncodeTopKRequest(static_cast<uint32_t>(k)),
                          "topk " + std::string(value)});
    } else if (arg == "sig" || arg == "freq" || arg == "pers") {
      const char* value = next(arg.c_str());
      if (value == nullptr) return 2;
      const Opcode opcode = arg == "sig"    ? Opcode::kEstimateSignificance
                            : arg == "freq" ? Opcode::kEstimateFrequency
                                            : Opcode::kEstimatePersistency;
      requests.push_back(
          {opcode, EncodeEstimateRequest(opcode, value), arg + " " + value});
    } else {
      return Usage(("unknown argument '" + arg + "'").c_str());
    }
  }
  if (port < 0) return Usage("--port is required");
  if (requests.empty()) return Usage("no request verbs given");

  std::string error;
  const int fd =
      Connect(host, static_cast<uint16_t>(port), timeout_usec, &error);
  if (fd < 0) {
    std::fprintf(stderr, "ltc_query: %s\n", error.c_str());
    return g_timed_out ? 5 : 4;
  }

  // One trace covers the whole invocation: every verb becomes a child
  // span of this client-side id at the server, so a multi-verb run
  // reads as one tree in the dump.
  TraceContextExt trace_ext{};
  if (with_trace) {
    trace_ext.trace_id = MixId(static_cast<uint64_t>(::getpid()));
    trace_ext.span_id = MixId(trace_ext.trace_id);
    std::fprintf(stderr, "ltc_query: trace_id=0x%016llx\n",
                 static_cast<unsigned long long>(trace_ext.trace_id));
  }

  // Pipeline every request, then read the responses back in order.
  std::string outgoing;
  for (PendingRequest& request : requests) {
    if (with_trace) AppendTraceExt(&request.payload, trace_ext);
    outgoing += EncodeFrame(request.payload);
  }
  if (!SendAll(fd, outgoing, timeout_usec, &error)) {
    std::fprintf(stderr, "ltc_query: %s\n", error.c_str());
    ::close(fd);
    return g_timed_out ? 5 : 4;
  }

  FrameParser parser;
  bool server_error = false;
  for (const PendingRequest& request : requests) {
    const auto payload = RecvFrame(fd, parser, timeout_usec, &error);
    if (!payload) {
      std::fprintf(stderr, "ltc_query: %s\n", error.c_str());
      ::close(fd);
      return g_timed_out ? 5 : 4;
    }
    const auto response = DecodeResponse(request.opcode, *payload);
    if (!response) {
      std::fprintf(stderr, "ltc_query: undecodable response for '%s'\n",
                   request.label.c_str());
      ::close(fd);
      return 4;
    }
    if (response->status != Status::kOk) {
      std::fprintf(stderr, "ltc_query: %s: error %s: %s\n",
                   request.label.c_str(), StatusName(response->status),
                   response->error_detail.c_str());
      server_error = true;
      continue;
    }
    PrintResponse(request, *response);
  }
  ::close(fd);
  return server_error ? 3 : 0;
}

}  // namespace
}  // namespace server
}  // namespace ltc

int main(int argc, char** argv) { return ltc::server::Main(argc, argv); }
