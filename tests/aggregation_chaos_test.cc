// Network-chaos battery for the aggregation tier (ctest label
// `netchaos`, run under asan by the aggregation CI job and under tsan
// by the tsan job): real sockets, a live aggregator-mode QueryServer,
// and N pusher threads hammered by seeded transport faults — refused
// connects, dropped and torn sends, injected latency, and the
// duplicate-forcing lost ack — while a chaos thread keeps arming new
// bursts mid-flight.
//
// The convergence claim under test is the tier's contract
// (docs/SERVING.md "Aggregation tier"): whatever the storm did to
// delivery — retries, duplicates, reorderings, torn frames, pusher
// "crashes" and restarts — once every node's final image lands, the
// aggregate is BIT-IDENTICAL to a sequential fold of those images.
// Not approximately right: identical bytes.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/serial.h"
#include "core/ltc.h"
#include "core/read_snapshot.h"
#include "server/aggregator.h"
#include "server/key_codec.h"
#include "server/protocol.h"
#include "server/push_client.h"
#include "server/query_server.h"
#include "telemetry/exposition.h"
#include "telemetry/metrics.h"
#include "testing/chaos_injector.h"
#include "testing/faulty_transport.h"

namespace ltc {
namespace server {
namespace {

LtcConfig ChaosConfigLtc() {
  LtcConfig config;
  config.memory_bytes = 8 * 1024;
  config.period_mode = PeriodMode::kCountBased;
  config.items_per_period = 200;
  return config;
}

/// Node `node`'s deterministic item stream — each node skews toward its
/// own heavy hitters so the merged top-k genuinely mixes nodes.
std::vector<ItemId> NodeStream(uint64_t node, size_t n) {
  Rng rng(node * 77 + 13);
  std::vector<ItemId> items;
  items.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    items.push_back(rng.Bernoulli(0.3) ? node * 10 + rng.Uniform(3)
                                       : 1000 + rng.Uniform(400));
  }
  return items;
}

/// The node's finalized cumulative image after `prefix` records — what
/// a pusher ships at that barrier.
Ltc ImageAt(const LtcConfig& config, const std::vector<ItemId>& stream,
            size_t prefix) {
  Ltc table(config);
  for (size_t i = 0; i < prefix; ++i) table.Insert(stream[i]);
  table.Finalize();
  return table;
}

/// Minimal blocking query client (the ltc_query idiom, trimmed).
class QueryClient {
 public:
  explicit QueryClient(uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    connected_ = fd_ >= 0 &&
                 ::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                           sizeof(addr)) == 0;
  }
  ~QueryClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool connected() const { return connected_; }

  std::optional<DecodedResponse> RoundTrip(Opcode opcode,
                                           const std::string& request) {
    std::string wire = EncodeFrame(request);
    size_t off = 0;
    while (off < wire.size()) {
      const ssize_t n = ::send(fd_, wire.data() + off, wire.size() - off,
                               MSG_NOSIGNAL);
      if (n <= 0) return std::nullopt;
      off += static_cast<size_t>(n);
    }
    while (true) {
      if (auto payload = parser_.Next()) {
        return DecodeResponse(opcode, *payload);
      }
      char buf[4096];
      const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
      if (n <= 0) return std::nullopt;
      parser_.Feed(std::string_view(buf, static_cast<size_t>(n)));
    }
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
  FrameParser parser_;
};

/// An aggregator-mode server on an ephemeral port.
struct AggregatorServer {
  explicit AggregatorServer(const LtcConfig& config,
                            uint64_t stale_after_sec = 60)
      : aggregator(config, &hub, stale_after_sec) {
    hub.Publish(std::make_unique<Ltc>(config), 0);
    QueryServerConfig server_config;
    server_config.port = 0;
    server_config.max_push_frame_bytes = kMaxPushFrameBytes;
    server.emplace(hub, codec, 0, server_config);
    server->AttachAggregator(&aggregator);
  }

  ReadSnapshotHub hub;
  NumericKeyCodec codec;
  AggregatorCore aggregator;
  std::optional<QueryServer> server;
};

TEST(AggregationChaos, FaultStormOfPushersConvergesBitIdentically) {
  const LtcConfig config = ChaosConfigLtc();
  constexpr uint64_t kNodes = 4;
  constexpr size_t kEpochs = 6;
  constexpr size_t kRecordsPerEpoch = 400;

  telemetry::MetricsRegistry registry;
  AggregatorServer agg(config);
  agg.aggregator.AttachMetrics(&registry);
  agg.server->AttachMetrics(&registry);
  std::string error;
  ASSERT_TRUE(agg.server->Start(&error)) << error;
  const uint16_t port = agg.server->port();

  // Pre-build every node's cumulative images; the final ones double as
  // the oracle inputs.
  std::vector<std::vector<ItemId>> streams;
  std::vector<std::vector<Ltc>> images;  // [node][epoch-1]
  for (uint64_t node = 0; node < kNodes; ++node) {
    streams.push_back(NodeStream(node + 1, kEpochs * kRecordsPerEpoch));
    std::vector<Ltc> node_images;
    for (size_t e = 1; e <= kEpochs; ++e) {
      node_images.push_back(
          ImageAt(config, streams.back(), e * kRecordsPerEpoch));
    }
    images.push_back(std::move(node_images));
  }

  // One faulty transport per node, all fed fresh bursts by the chaos
  // thread while background probabilities keep a lossy-network hum.
  std::vector<std::unique_ptr<TcpPushTransport>> tcp;
  std::vector<std::unique_ptr<FaultyTransport>> faulty;
  for (uint64_t node = 0; node < kNodes; ++node) {
    FaultyTransportConfig fault_config;
    fault_config.refuse_probability = 0.05;
    fault_config.drop_send_probability = 0.05;
    fault_config.short_write_probability = 0.05;
    fault_config.delay_probability = 0.10;
    fault_config.drop_ack_probability = 0.05;
    fault_config.delay_usec = 500;
    fault_config.seed = 900 + node;
    tcp.push_back(std::make_unique<TcpPushTransport>());
    faulty.push_back(
        std::make_unique<FaultyTransport>(tcp.back().get(), fault_config));
  }

  ChaosConfig chaos_config;
  chaos_config.seed = 4242;
  chaos_config.transport_fault_probability = 0.3;
  chaos_config.max_transport_burst = 2;
  ChaosInjector chaos(chaos_config);
  for (auto& transport : faulty) chaos.AttachTransport(transport.get());
  std::atomic<bool> storming{true};
  std::thread chaos_thread([&] {
    while (storming.load(std::memory_order_relaxed)) {
      chaos.Step();
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });

  auto make_pusher_config = [&](uint64_t node) {
    SketchPusherConfig push_config;
    push_config.port = port;
    push_config.node_id = node + 1;
    push_config.io_deadline_usec = 2'000'000;
    push_config.retry.max_attempts = 12;
    push_config.retry.initial_delay_usec = 500;
    push_config.retry.max_delay_usec = 5'000;
    push_config.retry.seed = node + 1;
    return push_config;
  };

  std::atomic<uint64_t> total_delivered{0};
  std::atomic<uint64_t> total_retries{0};
  std::atomic<bool> failed{false};
  std::vector<std::thread> pushers;
  for (uint64_t node = 0; node < kNodes; ++node) {
    pushers.emplace_back([&, node] {
      auto pusher = std::make_unique<SketchPusher>(make_pusher_config(node),
                                                   faulty[node].get());
      for (size_t e = 1; e <= kEpochs; ++e) {
        // Mid-sequence "crash": the pusher process dies and restarts —
        // fresh connection, same node identity, epoch counter resumed.
        if (e == kEpochs / 2) {
          faulty[node]->Close();
          total_retries.fetch_add(pusher->retries());
          pusher = std::make_unique<SketchPusher>(make_pusher_config(node),
                                                  faulty[node].get());
        }
        // One guaranteed lost ack per node: the push applies, the ack
        // dies, and the retry MUST be deduplicated (a genuine
        // duplicate, not a race).
        if (e == 2) faulty[node]->Arm(TransportFault::kDropAck, 1);

        SketchPusher::Result result =
            pusher->Push(images[node][e - 1], e, e * kRecordsPerEpoch);
        if (result.terminal) {
          ADD_FAILURE() << "node " << node + 1 << " epoch " << e
                        << " terminally rejected: " << result.error;
          failed.store(true);
          return;
        }
        const bool final_epoch = e == kEpochs;
        // A mid-stream push may exhaust its retry budget under the
        // storm — the next cumulative image supersedes it. The FINAL
        // image must land, so re-push it until delivered.
        for (int tries = 0; final_epoch && !result.delivered && tries < 100;
             ++tries) {
          result = pusher->Push(images[node][e - 1], e, e * kRecordsPerEpoch);
          if (result.terminal) break;
        }
        if (final_epoch && !result.delivered) {
          ADD_FAILURE() << "node " << node + 1
                        << " could not deliver its final image: "
                        << result.error;
          failed.store(true);
          return;
        }
        if (result.delivered) total_delivered.fetch_add(1);
      }
      total_retries.fetch_add(pusher->retries());
    });
  }
  for (auto& t : pushers) t.join();
  storming.store(false);
  chaos_thread.join();
  ASSERT_FALSE(failed.load());

  // The served view answers from the merged aggregate while it is
  // still live.
  {
    QueryClient client(port);
    ASSERT_TRUE(client.connected());
    const auto stats = client.RoundTrip(Opcode::kStats, EncodeStatsRequest());
    ASSERT_TRUE(stats.has_value());
    EXPECT_EQ(stats->status, Status::kOk);
    ASSERT_EQ(stats->stats.nodes.size(), kNodes);
    for (uint64_t node = 0; node < kNodes; ++node) {
      EXPECT_EQ(stats->stats.nodes[node].node_id, node + 1);
      EXPECT_EQ(stats->stats.nodes[node].last_epoch, kEpochs);
    }
    const auto topk = client.RoundTrip(Opcode::kTopK, EncodeTopKRequest(5));
    ASSERT_TRUE(topk.has_value());
    EXPECT_EQ(topk->status, Status::kOk);
    EXPECT_EQ(topk->topk.size(), 5u);
  }
  agg.server->Stop();

  // THE claim: bit-identical to the sequential fold of the final
  // images, no matter what the storm did to delivery.
  Ltc oracle(config);
  uint64_t oracle_records = 0;
  for (uint64_t node = 0; node < kNodes; ++node) {
    ASSERT_TRUE(oracle.MergeFrom(images[node][kEpochs - 1]));
    oracle_records += kEpochs * kRecordsPerEpoch;
  }
  BinaryWriter oracle_bytes;
  oracle.Serialize(oracle_bytes);
  EXPECT_EQ(agg.aggregator.SerializeMerged(), oracle_bytes.data());
  EXPECT_EQ(agg.aggregator.total_records(), oracle_records);
  EXPECT_EQ(agg.aggregator.num_nodes(), kNodes);

  // The storm was real: every node took at least the armed lost ack,
  // so duplicates genuinely flowed.
  EXPECT_GT(chaos.transport_faults_armed(), 0u);
  uint64_t injected = 0;
  for (const auto& transport : faulty) {
    injected += transport->total_faults_injected();
  }
  EXPECT_GE(injected, kNodes);  // >= the armed kDropAck per node
  EXPECT_GE(agg.aggregator.merges_total(), kNodes);

  // The telemetry rows registered and counted.
  const std::string exposition = telemetry::ExpositionText(registry);
  EXPECT_NE(exposition.find("ltc_agg_merges_total"), std::string::npos);
  EXPECT_NE(exposition.find("ltc_agg_pushes_duplicate_total"),
            std::string::npos);
  EXPECT_NE(exposition.find("ltc_agg_node_staleness_sec"), std::string::npos);
}

TEST(AggregationChaos, DeadPusherDegradesToStaleNotWedged) {
  const LtcConfig config = ChaosConfigLtc();
  AggregatorServer agg(config, /*stale_after_sec=*/1);
  std::string error;
  ASSERT_TRUE(agg.server->Start(&error)) << error;
  const uint16_t port = agg.server->port();

  // Node 1 pushes once, then dies forever.
  const auto stream = NodeStream(1, 500);
  {
    TcpPushTransport transport;
    SketchPusherConfig push_config;
    push_config.port = port;
    push_config.node_id = 1;
    SketchPusher pusher(push_config, &transport);
    const auto result = pusher.Push(ImageAt(config, stream, 500), 1, 500);
    ASSERT_TRUE(result.delivered);
    ASSERT_TRUE(result.applied);
  }

  std::this_thread::sleep_for(std::chrono::milliseconds(2100));

  // The aggregator never wedges: queries still answer from the dead
  // node's last image, and STATS flags the row stale.
  QueryClient client(port);
  ASSERT_TRUE(client.connected());
  const auto stats = client.RoundTrip(Opcode::kStats, EncodeStatsRequest());
  ASSERT_TRUE(stats.has_value());
  ASSERT_EQ(stats->stats.nodes.size(), 1u);
  EXPECT_EQ(stats->stats.nodes[0].node_id, 1u);
  EXPECT_GE(stats->stats.nodes[0].age_sec, 2u);
  EXPECT_EQ(stats->stats.nodes[0].stale, 1u);

  const auto topk = client.RoundTrip(Opcode::kTopK, EncodeTopKRequest(3));
  ASSERT_TRUE(topk.has_value());
  EXPECT_EQ(topk->status, Status::kOk);
  EXPECT_EQ(topk->topk.size(), 3u);

  // A second node joining later is merged on top of the stale image.
  TcpPushTransport transport;
  SketchPusherConfig push_config;
  push_config.port = port;
  push_config.node_id = 2;
  SketchPusher pusher(push_config, &transport);
  const auto second = pusher.Push(ImageAt(config, NodeStream(2, 300), 300),
                                  1, 300);
  EXPECT_TRUE(second.delivered);
  agg.server->Stop();
  EXPECT_EQ(agg.aggregator.num_nodes(), 2u);
  EXPECT_EQ(agg.aggregator.total_records(), 800u);
}

}  // namespace
}  // namespace server
}  // namespace ltc
