// Bounded single-producer / single-consumer ring buffer of Records — the
// per-shard queue of the ingestion pipeline (ingest_pipeline.h).
//
// Lock-free in the standard SPSC way: the producer owns `tail_`, the
// consumer owns `head_`, and each side publishes with a release store
// that the other side acquire-loads. Both sides keep a local cache of the
// opposite index so the steady-state fast path touches only its own cache
// line (the acquire reload happens only when the cached view says
// full/empty). Capacity is rounded up to a power of two so the index maps
// with a mask instead of a modulo.
//
// The batch operations exist for throughput: TryPushBatch publishes a
// whole run of records with ONE release store, and PopBatch consumes up
// to a whole batch with one acquire/release pair — this is where the
// pipeline's amortization comes from.

#ifndef LTC_INGEST_SPSC_RING_H_
#define LTC_INGEST_SPSC_RING_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "stream/stream.h"

namespace ltc {

class SpscRing {
 public:
  /// Capacity is `min_capacity` rounded up to a power of two (min 2).
  explicit SpscRing(size_t min_capacity) {
    size_t capacity = 2;
    while (capacity < min_capacity) capacity *= 2;
    slots_.resize(capacity);
    mask_ = capacity - 1;
  }

  size_t capacity() const { return slots_.size(); }

  /// Producer side. Returns false when the ring is full.
  bool TryPush(const Record& record) {
    const uint64_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - head_cache_ >= slots_.size()) {
      head_cache_ = head_.load(std::memory_order_acquire);
      if (tail - head_cache_ >= slots_.size()) return false;
    }
    slots_[tail & mask_] = record;
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Producer side: pushes a prefix of `records`, as much as fits, with a
  /// single publish. Returns how many were pushed.
  size_t TryPushBatch(std::span<const Record> records) {
    const uint64_t tail = tail_.load(std::memory_order_relaxed);
    uint64_t free = slots_.size() - (tail - head_cache_);
    if (free < records.size()) {
      head_cache_ = head_.load(std::memory_order_acquire);
      free = slots_.size() - (tail - head_cache_);
    }
    const size_t count =
        free < records.size() ? static_cast<size_t>(free) : records.size();
    for (size_t i = 0; i < count; ++i) {
      slots_[(tail + i) & mask_] = records[i];
    }
    if (count > 0) tail_.store(tail + count, std::memory_order_release);
    return count;
  }

  /// Consumer side: pops up to `max_count` records into `out`. Returns
  /// how many were popped (0 when the ring is empty).
  size_t PopBatch(Record* out, size_t max_count) {
    const uint64_t head = head_.load(std::memory_order_relaxed);
    if (tail_cache_ == head) {
      tail_cache_ = tail_.load(std::memory_order_acquire);
      if (tail_cache_ == head) return 0;
    }
    uint64_t available = tail_cache_ - head;
    const size_t count = available < max_count
                             ? static_cast<size_t>(available)
                             : max_count;
    for (size_t i = 0; i < count; ++i) {
      out[i] = slots_[(head + i) & mask_];
    }
    head_.store(head + count, std::memory_order_release);
    return count;
  }

  /// Racy size estimate, for stats/monitoring only. Safe to call from
  /// any thread: `head` is loaded BEFORE `tail`, and head only ever
  /// advances toward tail, so the tail we read afterwards is >= the
  /// head we read — the difference cannot underflow. Concurrent pushes
  /// between the two loads can only inflate the estimate, so it is
  /// additionally clamped to the capacity.
  size_t SizeApprox() const {
    const uint64_t head = head_.load(std::memory_order_acquire);
    const uint64_t tail = tail_.load(std::memory_order_acquire);
    const uint64_t depth = tail >= head ? tail - head : 0;  // belt & braces
    return depth > slots_.size() ? slots_.size()
                                 : static_cast<size_t>(depth);
  }

 private:
  std::vector<Record> slots_;
  size_t mask_ = 0;
  // Producer cache line: its own index plus a cached view of the
  // consumer's, so uncontended pushes never load the consumer's line.
  alignas(64) std::atomic<uint64_t> tail_{0};
  uint64_t head_cache_ = 0;
  // Consumer cache line, symmetrically.
  alignas(64) std::atomic<uint64_t> head_{0};
  uint64_t tail_cache_ = 0;
};

}  // namespace ltc

#endif  // LTC_INGEST_SPSC_RING_H_
