// The coding interface PIE consumes: encode a 64-bit item ID into 16-bit
// symbols addressed by seeds, and decode an ID back from whatever symbols
// survived. Two implementations: the plain LT code (this reproduction's
// default, DESIGN.md §3) and the Raptor code PIE originally published
// with.

#ifndef LTC_CODES_ID_CODE_H_
#define LTC_CODES_ID_CODE_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "codes/lt_code.h"
#include "codes/raptor_code.h"

namespace ltc {

class IdCode {
 public:
  virtual ~IdCode() = default;

  /// Encodes one symbol of the ID for the given seed.
  virtual uint16_t EncodeId(uint64_t id, uint64_t symbol_seed) const = 0;

  /// Recovers the ID from received symbols; nullopt on stall.
  virtual std::optional<uint64_t> DecodeId(
      const std::vector<LtCode::Symbol>& symbols) const = 0;

  virtual const char* name() const = 0;
};

/// Plain LT over the kIdBlocks 16-bit chunks of the ID.
class LtIdCode : public IdCode {
 public:
  LtIdCode() : code_(kIdBlocks) {}

  uint16_t EncodeId(uint64_t id, uint64_t symbol_seed) const override {
    return static_cast<uint16_t>(code_.Encode(SplitId(id), symbol_seed));
  }

  std::optional<uint64_t> DecodeId(
      const std::vector<LtCode::Symbol>& symbols) const override {
    auto blocks = code_.Decode(symbols);
    if (!blocks) return std::nullopt;
    return JoinId(*blocks);
  }

  const char* name() const override { return "LT"; }

 private:
  LtCode code_;
};

/// Raptor (precode + LT) over the same chunks — PIE's published coding.
class RaptorIdCode : public IdCode {
 public:
  explicit RaptorIdCode(uint32_t num_parity = 2, uint64_t seed = 0)
      : code_(kIdBlocks, num_parity, seed, /*parity_degree=*/2) {}

  uint16_t EncodeId(uint64_t id, uint64_t symbol_seed) const override {
    return static_cast<uint16_t>(code_.Encode(SplitId(id), symbol_seed));
  }

  std::optional<uint64_t> DecodeId(
      const std::vector<LtCode::Symbol>& symbols) const override {
    auto blocks = code_.Decode(symbols);
    if (!blocks) return std::nullopt;
    return JoinId(*blocks);
  }

  const char* name() const override { return "Raptor"; }

 private:
  RaptorCode code_;
};

/// Which coding a PIE instance uses.
enum class IdCodeKind { kLt, kRaptor };

std::unique_ptr<IdCode> MakeIdCode(IdCodeKind kind);

}  // namespace ltc

#endif  // LTC_CODES_ID_CODE_H_
