// The snapshot frame's encode/decode contract: every way a frame can
// be damaged maps to its typed SnapshotError, and only an untouched
// frame decodes.

#include <string>

#include <gtest/gtest.h>

#include "common/serial.h"
#include "core/ltc.h"
#include "snapshot/frame.h"
#include "snapshot/sketch_snapshot.h"

namespace ltc {
namespace {

TEST(SnapshotFrame, RoundTrip) {
  const std::string payload = "payload bytes \x00\x01\xff with nuls";
  const std::string frame = EncodeFrame(payload);
  ASSERT_EQ(frame.size(), kFrameHeaderSize + payload.size());
  const FrameDecodeResult decoded = DecodeFrame(frame);
  ASSERT_TRUE(decoded.ok()) << SnapshotErrorName(decoded.error);
  EXPECT_EQ(decoded.payload, payload);
}

TEST(SnapshotFrame, EmptyPayloadRoundTrips) {
  const std::string frame = EncodeFrame("");
  const FrameDecodeResult decoded = DecodeFrame(frame);
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded.payload.empty());
}

TEST(SnapshotFrame, TooShort) {
  const std::string frame = EncodeFrame("abc");
  for (size_t n = 0; n < kFrameHeaderSize; ++n) {
    EXPECT_EQ(DecodeFrame(frame.substr(0, n)).error,
              SnapshotError::kTooShort)
        << "prefix " << n;
  }
}

TEST(SnapshotFrame, BadMagic) {
  std::string frame = EncodeFrame("abc");
  frame[0] ^= 0x01;
  EXPECT_EQ(DecodeFrame(frame).error, SnapshotError::kBadMagic);
}

TEST(SnapshotFrame, BadVersion) {
  // A future-version frame must be refused, not misparsed — but a
  // corrupt version field also breaks the header CRC, so rebuild the
  // header CRC to isolate the version check. Easier: flip a version
  // byte AND observe that without CRC repair it reports the header CRC
  // first (the stricter of the two outcomes is fine for corruption,
  // but version must dominate when the header checksums clean).
  std::string frame = EncodeFrame("abc");
  frame[4] ^= 0x01;  // version field
  const SnapshotError error = DecodeFrame(frame).error;
  EXPECT_TRUE(error == SnapshotError::kBadVersion ||
              error == SnapshotError::kBadHeaderCrc)
      << SnapshotErrorName(error);
  EXPECT_NE(error, SnapshotError::kNone);
}

TEST(SnapshotFrame, HeaderCorruptionIsTyped) {
  // A flipped bit in the length field must NOT lead to a garbage-length
  // payload read.
  std::string frame = EncodeFrame("some payload");
  frame[8] ^= 0x40;  // low byte of the payload length
  EXPECT_EQ(DecodeFrame(frame).error, SnapshotError::kBadHeaderCrc);
}

TEST(SnapshotFrame, TruncatedPayload) {
  const std::string frame = EncodeFrame("some payload");
  const FrameDecodeResult decoded =
      DecodeFrame(std::string_view(frame).substr(0, frame.size() - 1));
  EXPECT_EQ(decoded.error, SnapshotError::kLengthMismatch);
}

TEST(SnapshotFrame, InflatedPayload) {
  std::string frame = EncodeFrame("some payload");
  frame += "extra tail bytes";
  EXPECT_EQ(DecodeFrame(frame).error, SnapshotError::kLengthMismatch);
}

TEST(SnapshotFrame, PayloadCorruptionIsTyped) {
  std::string frame = EncodeFrame("some payload");
  frame[kFrameHeaderSize + 3] ^= 0x80;
  EXPECT_EQ(DecodeFrame(frame).error, SnapshotError::kBadPayloadCrc);
}

TEST(SnapshotFrame, ErrorNamesAreStable) {
  EXPECT_STREQ(SnapshotErrorName(SnapshotError::kNone), "ok");
  EXPECT_STREQ(SnapshotErrorName(SnapshotError::kBadPayloadCrc),
               "bad-payload-crc");
  EXPECT_STREQ(SnapshotErrorName(SnapshotError::kPayloadRejected),
               "payload-rejected");
}

TEST(SketchSnapshot, RoundTripsLtc) {
  LtcConfig config;
  config.memory_bytes = 16 * 1024;
  Ltc table(config);
  for (uint64_t i = 0; i < 500; ++i) table.Insert(i % 37 + 1, 0.01 * i);
  const std::string frame = EncodeSketchSnapshot(table);
  SnapshotError error = SnapshotError::kNone;
  auto restored = DecodeSketchSnapshot<Ltc>(frame, &error);
  ASSERT_TRUE(restored.has_value()) << SnapshotErrorName(error);
  BinaryWriter a, b;
  table.Serialize(a);
  restored->Serialize(b);
  EXPECT_EQ(a.data(), b.data());
}

TEST(SketchSnapshot, TrailingBytesAreRejected) {
  LtcConfig config;
  config.memory_bytes = 8 * 1024;
  Ltc table(config);
  table.Insert(1, 0.0);
  BinaryWriter writer;
  table.Serialize(writer);
  const std::string frame = EncodeFrame(std::string(writer.data()) + "junk");
  SnapshotError error = SnapshotError::kNone;
  EXPECT_FALSE(DecodeSketchSnapshot<Ltc>(frame, &error).has_value());
  EXPECT_EQ(error, SnapshotError::kPayloadRejected);
}

}  // namespace
}  // namespace ltc
