// Aggregation-tier battery (docs/SERVING.md "Aggregation tier"):
// PUSH_SKETCH wire goldens, the push-only frame-cap raise, the
// AggregatorCore's idempotent-merge semantics (duplicates, stale
// epochs, reorderings — all bit-identical), typed rejection of every
// malformed push (corruption sweep included), FakeClock staleness
// rows, dispatcher integration, and the SketchPusher's retry loop
// driven against an in-process loopback transport under injected
// faults. The socket-level storm lives in tests/aggregation_chaos_test.
//
// The tier's central claim mirrors the protocol's totality claim: for
// EVERY push a client can send — duplicated, reordered, truncated,
// corrupted, wrong-shaped — the aggregator answers a typed outcome and
// its merged aggregate stays a pure function of {newest valid image
// per node}.

#include <algorithm>
#include <cstring>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/clock.h"
#include "common/serial.h"
#include "core/ltc.h"
#include "core/read_snapshot.h"
#include "server/aggregator.h"
#include "server/dispatcher.h"
#include "server/key_codec.h"
#include "server/protocol.h"
#include "server/push_client.h"
#include "testing/faulty_transport.h"

namespace ltc {
namespace server {
namespace {

LtcConfig SmallConfig() {
  LtcConfig config;
  config.memory_bytes = 4 * 1024;
  config.period_mode = PeriodMode::kCountBased;
  config.items_per_period = 100;
  return config;
}

/// A finalized sketch holding `copies` inserts of each item in `items`
/// — the image a pusher would ship at a barrier.
Ltc MakeSketch(const LtcConfig& config, const std::vector<ItemId>& items,
               uint64_t copies = 1) {
  Ltc table(config);
  for (uint64_t c = 0; c < copies; ++c) {
    for (ItemId item : items) table.Insert(item);
  }
  table.Finalize();
  return table;
}

std::string SerializeTable(const Ltc& table) {
  BinaryWriter writer;
  table.Serialize(writer);
  return writer.data();
}

PushRequest MakePush(uint64_t node_id, uint64_t epoch, const Ltc& table,
                     uint64_t records = 0) {
  PushRequest push;
  push.node_id = node_id;
  push.epoch_seq = epoch;
  push.records = records;
  push.payload = SerializeTable(table);
  return push;
}

// --- Wire format ------------------------------------------------------

TEST(PushProtocol, RequestLayoutIsPinnedAndRoundTrips) {
  PushRequest push;
  push.node_id = 0x1122334455667788;
  push.epoch_seq = 7;
  push.sketch_kind = kSketchKindLtc;
  push.records = 1000;
  push.payload = "abc";

  const std::string encoded = EncodePushRequest(push);
  // u8 opcode + u64 node + u64 epoch + u8 kind + u64 records +
  // u32 payload_len + payload.
  ASSERT_EQ(encoded.size(), 1 + 8 + 8 + 1 + 8 + 4 + 3);
  EXPECT_EQ(static_cast<uint8_t>(encoded[0]),
            static_cast<uint8_t>(Opcode::kPushSketch));
  EXPECT_EQ(static_cast<uint8_t>(encoded[1]), 0x88);  // little-endian
  EXPECT_EQ(static_cast<uint8_t>(encoded[8]), 0x11);

  const auto decoded = DecodePushRequestBody(
      std::string_view(encoded).substr(1));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->node_id, push.node_id);
  EXPECT_EQ(decoded->epoch_seq, 7u);
  EXPECT_EQ(decoded->sketch_kind, kSketchKindLtc);
  EXPECT_EQ(decoded->records, 1000u);
  EXPECT_EQ(decoded->payload, "abc");
}

TEST(PushProtocol, DecodeRejectsTruncatedAndInconsistentBodies) {
  PushRequest push;
  push.node_id = 5;
  push.epoch_seq = 1;
  push.records = 10;
  push.payload = "sketchbytes";
  const std::string body = EncodePushRequest(push).substr(1);

  // Every strict prefix is truncated.
  for (size_t len = 0; len < body.size(); ++len) {
    EXPECT_FALSE(DecodePushRequestBody(body.substr(0, len)).has_value())
        << "prefix of " << len << " bytes decoded";
  }
  // Trailing garbage makes the declared payload length inconsistent.
  EXPECT_FALSE(DecodePushRequestBody(body + "x").has_value());
  // A declared length above the actual bytes is truncation, not UB.
  std::string inflated = body;
  inflated[8 + 8 + 1 + 8] = static_cast<char>(0xff);
  EXPECT_FALSE(DecodePushRequestBody(inflated).has_value());
}

TEST(PushProtocol, AckRoundTripsAndRejectionsAreTyped) {
  const auto applied = DecodeResponse(Opcode::kPushSketch,
                                      EncodePushResponse(9, true));
  ASSERT_TRUE(applied.has_value());
  EXPECT_EQ(applied->status, Status::kOk);
  EXPECT_EQ(applied->push_epoch, 9u);
  EXPECT_TRUE(applied->push_applied);

  const auto duplicate = DecodeResponse(Opcode::kPushSketch,
                                        EncodePushResponse(9, false));
  ASSERT_TRUE(duplicate.has_value());
  EXPECT_FALSE(duplicate->push_applied);

  for (Status status : {Status::kErrShapeMismatch, Status::kErrStaleEpoch,
                        Status::kErrBadSketch, Status::kErrNotAggregator}) {
    const auto error = DecodeResponse(
        Opcode::kPushSketch, EncodeErrorResponse(status, "why"));
    ASSERT_TRUE(error.has_value()) << StatusName(status);
    EXPECT_EQ(error->status, status);
    EXPECT_EQ(error->error_detail, "why");
  }

  // A truncated ack is a malformed payload, not a crash.
  const std::string ack = EncodePushResponse(9, true);
  for (size_t len = 0; len < ack.size(); ++len) {
    EXPECT_FALSE(
        DecodeResponse(Opcode::kPushSketch, ack.substr(0, len)).has_value());
  }
}

TEST(PushProtocol, FrameParserRaisesTheCapForPushFramesOnly) {
  const size_t query_cap = 64;
  const size_t push_cap = 1 << 20;
  const std::string big_push(
      EncodePushRequest(MakePush(1, 1, MakeSketch(SmallConfig(), {1, 2, 3}))));
  ASSERT_GT(big_push.size(), query_cap);
  ASSERT_LE(big_push.size(), push_cap);

  // A push frame above the query cap parses.
  FrameParser parser(query_cap, push_cap);
  parser.Feed(EncodeFrame(big_push));
  const auto payload = parser.Next();
  ASSERT_TRUE(payload.has_value());
  EXPECT_EQ(*payload, big_push);
  EXPECT_FALSE(parser.oversized());

  // The same length under a non-push opcode poisons the stream.
  std::string big_query = big_push;
  big_query[0] = static_cast<char>(Opcode::kTopK);
  FrameParser query_parser(query_cap, push_cap);
  query_parser.Feed(EncodeFrame(big_query));
  EXPECT_FALSE(query_parser.Next().has_value());
  EXPECT_TRUE(query_parser.oversized());

  // Above even the push cap: poisoned regardless of opcode.
  FrameParser capped(query_cap, /*max_push_frame_bytes=*/128);
  capped.Feed(EncodeFrame(big_push));
  EXPECT_FALSE(capped.Next().has_value());
  EXPECT_TRUE(capped.oversized());

  // Deciding needs the opcode byte: a large declared length parks the
  // parser (not poisoned, not popped) until byte 5 arrives.
  FrameParser parked(query_cap, push_cap);
  const std::string wire = EncodeFrame(big_push);
  parked.Feed(std::string_view(wire).substr(0, 4));
  EXPECT_FALSE(parked.Next().has_value());
  EXPECT_FALSE(parked.oversized());
  parked.Feed(std::string_view(wire).substr(4));
  const auto parked_payload = parked.Next();
  ASSERT_TRUE(parked_payload.has_value());
  EXPECT_EQ(*parked_payload, big_push);
}

// --- AggregatorCore: idempotent merge semantics -----------------------

TEST(Aggregator, MergesAndAnswersDuplicatesWithoutReapplying) {
  const LtcConfig config = SmallConfig();
  AggregatorCore aggregator(config, /*hub=*/nullptr);

  const Ltc node_a = MakeSketch(config, {1, 2, 3}, 10);
  const Ltc node_b = MakeSketch(config, {4, 5, 6}, 20);

  auto outcome = aggregator.ApplyPush(MakePush(1, 1, node_a, 30));
  EXPECT_EQ(outcome.status, Status::kOk);
  EXPECT_TRUE(outcome.applied);
  EXPECT_EQ(outcome.epoch_seq, 1u);

  outcome = aggregator.ApplyPush(MakePush(2, 1, node_b, 60));
  EXPECT_TRUE(outcome.applied);
  EXPECT_EQ(aggregator.merges_total(), 2u);
  EXPECT_EQ(aggregator.num_nodes(), 2u);
  EXPECT_EQ(aggregator.total_records(), 90u);

  // A retried delivery of an applied epoch: kOk, applied=0, and the
  // aggregate does not move by a single bit.
  const std::string before = aggregator.SerializeMerged();
  outcome = aggregator.ApplyPush(MakePush(1, 1, node_a, 30));
  EXPECT_EQ(outcome.status, Status::kOk);
  EXPECT_FALSE(outcome.applied);
  EXPECT_EQ(aggregator.SerializeMerged(), before);
  EXPECT_EQ(aggregator.merges_total(), 2u);

  // The aggregate equals a sequential fold of the images in node order.
  Ltc oracle(config);
  ASSERT_TRUE(oracle.MergeFrom(node_a));
  ASSERT_TRUE(oracle.MergeFrom(node_b));
  EXPECT_EQ(before, SerializeTable(oracle));
}

TEST(Aggregator, EpochGateIsTypedAndJudgedBeforeDeserializing) {
  const LtcConfig config = SmallConfig();
  AggregatorCore aggregator(config, nullptr);
  const Ltc image = MakeSketch(config, {7, 8}, 5);

  // Epoch 0 is never valid.
  auto outcome = aggregator.ApplyPush(MakePush(1, 0, image));
  EXPECT_EQ(outcome.status, Status::kErrBadSketch);

  ASSERT_TRUE(aggregator.ApplyPush(MakePush(1, 4, image)).applied);

  // Older than applied: terminal stale rejection...
  outcome = aggregator.ApplyPush(MakePush(1, 3, image));
  EXPECT_EQ(outcome.status, Status::kErrStaleEpoch);
  // ...even when the retransmit is corrupt — the gate fires first, so
  // the client hears the retry-stopping answer, not kErrBadSketch.
  PushRequest corrupt = MakePush(1, 2, image);
  corrupt.payload = "garbage";
  EXPECT_EQ(aggregator.ApplyPush(corrupt).status, Status::kErrStaleEpoch);

  // A duplicate of the newest epoch is judged by sequence alone too.
  corrupt = MakePush(1, 4, image);
  corrupt.payload = "garbage";
  outcome = aggregator.ApplyPush(corrupt);
  EXPECT_EQ(outcome.status, Status::kOk);
  EXPECT_FALSE(outcome.applied);
  EXPECT_EQ(aggregator.rejects_total(), 3u);  // epoch-0, stale, stale
}

TEST(Aggregator, AggregateIsAPureFunctionOfNewestImagesPerNode) {
  const LtcConfig config = SmallConfig();
  const Ltc a1 = MakeSketch(config, {1, 2}, 5);
  const Ltc a2 = MakeSketch(config, {1, 2, 3}, 9);
  const Ltc b1 = MakeSketch(config, {10, 11}, 4);

  // Clean sequential delivery.
  AggregatorCore clean(config, nullptr);
  ASSERT_TRUE(clean.ApplyPush(MakePush(1, 1, a1)).applied);
  ASSERT_TRUE(clean.ApplyPush(MakePush(2, 1, b1)).applied);
  ASSERT_TRUE(clean.ApplyPush(MakePush(1, 2, a2)).applied);

  // The same final state delivered messily: interleaved, duplicated,
  // and with a stale straggler rejected along the way.
  AggregatorCore messy(config, nullptr);
  EXPECT_TRUE(messy.ApplyPush(MakePush(2, 1, b1)).applied);
  EXPECT_FALSE(messy.ApplyPush(MakePush(2, 1, b1)).applied);  // dup
  EXPECT_TRUE(messy.ApplyPush(MakePush(1, 1, a1)).applied);
  EXPECT_TRUE(messy.ApplyPush(MakePush(1, 2, a2)).applied);
  EXPECT_EQ(messy.ApplyPush(MakePush(1, 1, a1)).status,
            Status::kErrStaleEpoch);                          // straggler
  EXPECT_FALSE(messy.ApplyPush(MakePush(1, 2, a2)).applied);  // dup

  const std::string merged = clean.SerializeMerged();
  ASSERT_FALSE(merged.empty());
  EXPECT_EQ(merged, messy.SerializeMerged());
}

TEST(Aggregator, WrongShapeAndWrongKindAreTypedRejections) {
  const LtcConfig config = SmallConfig();
  AggregatorCore aggregator(config, nullptr);
  ASSERT_TRUE(
      aggregator.ApplyPush(MakePush(1, 1, MakeSketch(config, {1}))).applied);
  const std::string before = aggregator.SerializeMerged();

  // Different geometry cannot merge.
  LtcConfig big = config;
  big.memory_bytes = 2 * config.memory_bytes;
  auto outcome = aggregator.ApplyPush(MakePush(2, 1, MakeSketch(big, {2})));
  EXPECT_EQ(outcome.status, Status::kErrShapeMismatch);

  // Different significance weights cannot merge either.
  LtcConfig reweighted = config;
  reweighted.alpha = 3.0;
  outcome = aggregator.ApplyPush(MakePush(2, 1, MakeSketch(reweighted, {2})));
  EXPECT_EQ(outcome.status, Status::kErrShapeMismatch);

  // Unknown sketch kind.
  PushRequest push = MakePush(2, 1, MakeSketch(config, {2}));
  push.sketch_kind = 9;
  EXPECT_EQ(aggregator.ApplyPush(push).status, Status::kErrBadSketch);

  // None of it moved the aggregate, and no node was registered.
  EXPECT_EQ(aggregator.SerializeMerged(), before);
  EXPECT_EQ(aggregator.num_nodes(), 1u);
  EXPECT_EQ(aggregator.rejects_total(), 3u);
}

TEST(Aggregator, CorruptionSweepNeverCrashesAndRejectionsNeverMutate) {
  const LtcConfig config = SmallConfig();
  AggregatorCore aggregator(config, nullptr);
  ASSERT_TRUE(
      aggregator.ApplyPush(MakePush(1, 1, MakeSketch(config, {1, 2}, 3)))
          .applied);

  const std::string valid = SerializeTable(MakeSketch(config, {5, 6}, 7));
  uint64_t applied = 0, rejected = 0, epoch = 0;
  for (size_t offset = 0; offset < valid.size(); ++offset) {
    PushRequest push;
    push.node_id = 2;
    push.payload = valid;
    push.payload[offset] = static_cast<char>(push.payload[offset] ^ 0xff);
    push.epoch_seq = epoch + 1;  // fresh epoch: the gate never masks it
    const std::string before = aggregator.SerializeMerged();
    const PushOutcome outcome = aggregator.ApplyPush(push);
    if (outcome.status == Status::kOk) {
      // The flip still deserialized into a mergeable table — from the
      // wire that is indistinguishable from honest data.
      ASSERT_TRUE(outcome.applied);
      ++applied;
      ++epoch;
    } else {
      // A typed rejection, and the aggregate did not move one bit.
      EXPECT_TRUE(outcome.status == Status::kErrBadSketch ||
                  outcome.status == Status::kErrShapeMismatch)
          << "offset " << offset << ": status "
          << StatusName(outcome.status);
      EXPECT_EQ(aggregator.SerializeMerged(), before) << "offset " << offset;
      ++rejected;
    }
  }
  // The sweep genuinely exercised the rejection path.
  EXPECT_GT(rejected, 0u);
  EXPECT_EQ(applied + rejected, valid.size());
}

TEST(Aggregator, StalenessRowsAgeOnTheInjectedClock) {
  FakeClock clock;
  const LtcConfig config = SmallConfig();
  AggregatorCore aggregator(config, nullptr, /*stale_after_sec=*/30, &clock);
  const Ltc image = MakeSketch(config, {1});

  ASSERT_TRUE(aggregator.ApplyPush(MakePush(7, 1, image)).applied);
  clock.Advance(10'000'000);
  ASSERT_TRUE(aggregator.ApplyPush(MakePush(8, 1, image)).applied);

  clock.Advance(25'000'000);  // node 7: 35s, node 8: 25s
  auto rows = aggregator.NodeRows();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].node_id, 7u);
  EXPECT_EQ(rows[0].age_sec, 35u);
  EXPECT_EQ(rows[0].stale, 1u);
  EXPECT_EQ(rows[1].node_id, 8u);
  EXPECT_EQ(rows[1].age_sec, 25u);
  EXPECT_EQ(rows[1].stale, 0u);

  // A fresh push heals the row; the dead node keeps degrading but the
  // aggregator keeps serving (its image still contributes).
  ASSERT_TRUE(aggregator.ApplyPush(MakePush(7, 2, image)).applied);
  rows = aggregator.NodeRows();
  EXPECT_EQ(rows[0].age_sec, 0u);
  EXPECT_EQ(rows[0].stale, 0u);
  EXPECT_FALSE(aggregator.SerializeMerged().empty());
}

TEST(Aggregator, RepublishesTheMergedViewThroughTheHub) {
  const LtcConfig config = SmallConfig();
  ReadSnapshotHub hub;
  AggregatorCore aggregator(config, &hub);
  EXPECT_EQ(hub.PublishedSeq(), 0u);

  ASSERT_TRUE(
      aggregator.ApplyPush(MakePush(1, 1, MakeSketch(config, {42}, 9), 9))
          .applied);
  ASSERT_EQ(hub.PublishedSeq(), 1u);
  {
    auto ref = hub.Acquire();
    ASSERT_TRUE(ref);
    EXPECT_EQ(ref->records, 9u);
    const auto top = ref->table->TopK(1);
    ASSERT_EQ(top.size(), 1u);
    EXPECT_EQ(top[0].item, 42u);
  }

  // A duplicate republishes nothing; a new epoch republishes.
  aggregator.ApplyPush(MakePush(1, 1, MakeSketch(config, {42}, 9), 9));
  EXPECT_EQ(hub.PublishedSeq(), 1u);
  ASSERT_TRUE(
      aggregator.ApplyPush(MakePush(1, 2, MakeSketch(config, {42}, 10), 10))
          .applied);
  EXPECT_EQ(hub.PublishedSeq(), 2u);
}

// --- Dispatcher integration ------------------------------------------

struct DispatcherFixture {
  DispatcherFixture() : dispatcher(hub, codec, 0) {}

  std::optional<DecodedResponse> Push(const PushRequest& push) {
    return DecodeResponse(Opcode::kPushSketch,
                          dispatcher.Handle(EncodePushRequest(push)));
  }

  ReadSnapshotHub hub;
  NumericKeyCodec codec;
  QueryDispatcher dispatcher;
};

TEST(DispatcherPush, WithoutAnAggregatorPushesGetATypedRefusal) {
  DispatcherFixture fx;
  const auto response =
      fx.Push(MakePush(1, 1, MakeSketch(SmallConfig(), {1})));
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->status, Status::kErrNotAggregator);
}

TEST(DispatcherPush, PushesMergeAndStatsGrowNodeRows) {
  DispatcherFixture fx;
  const LtcConfig config = SmallConfig();
  AggregatorCore aggregator(config, &fx.hub);
  fx.dispatcher.AttachAggregator(&aggregator);

  auto ack = fx.Push(MakePush(3, 1, MakeSketch(config, {1, 2}, 4), 8));
  ASSERT_TRUE(ack.has_value());
  EXPECT_EQ(ack->status, Status::kOk);
  EXPECT_EQ(ack->push_epoch, 1u);
  EXPECT_TRUE(ack->push_applied);

  // The duplicate ack over the wire.
  ack = fx.Push(MakePush(3, 1, MakeSketch(config, {1, 2}, 4), 8));
  ASSERT_TRUE(ack.has_value());
  EXPECT_EQ(ack->status, Status::kOk);
  EXPECT_FALSE(ack->push_applied);

  // STATS now carries the per-node delivery rows.
  const auto stats = DecodeResponse(
      Opcode::kStats, fx.dispatcher.Handle(EncodeStatsRequest()));
  ASSERT_TRUE(stats.has_value());
  ASSERT_EQ(stats->stats.nodes.size(), 1u);
  EXPECT_EQ(stats->stats.nodes[0].node_id, 3u);
  EXPECT_EQ(stats->stats.nodes[0].last_epoch, 1u);
  EXPECT_EQ(stats->stats.protocol_version, kProtocolVersion);

  // A truncated push body is malformed, never a crash.
  const std::string wire =
      EncodePushRequest(MakePush(3, 2, MakeSketch(config, {1})));
  const auto malformed = DecodeResponse(
      Opcode::kPushSketch, fx.dispatcher.Handle(wire.substr(0, 12)));
  ASSERT_TRUE(malformed.has_value());
  EXPECT_EQ(malformed->status, Status::kErrMalformed);
}

TEST(DispatcherPush, CorruptedRequestBytesAlwaysGetAWellFormedAnswer) {
  DispatcherFixture fx;
  const LtcConfig config = SmallConfig();
  AggregatorCore aggregator(config, &fx.hub);
  fx.dispatcher.AttachAggregator(&aggregator);

  const std::string wire =
      EncodePushRequest(MakePush(4, 1, MakeSketch(config, {9}, 2)));
  for (size_t offset = 0; offset < wire.size(); ++offset) {
    std::string corrupt = wire;
    corrupt[offset] = static_cast<char>(corrupt[offset] ^ 0xff);
    const std::string response = fx.dispatcher.Handle(corrupt);
    ASSERT_FALSE(response.empty()) << "offset " << offset;
    // First byte is always a known status.
    EXPECT_LE(static_cast<uint8_t>(response[0]),
              static_cast<uint8_t>(Status::kErrNotAggregator))
        << "offset " << offset;
  }
}

// --- SketchPusher against an in-process loopback ---------------------

/// A PushTransport that short-circuits straight into a dispatcher: Send
/// feeds the server-side frame parser (push cap raised, like an
/// aggregator's), Recv drains the queued response frames. Close models
/// a dropped connection — buffered bytes in both directions are gone.
class LoopbackTransport final : public PushTransport {
 public:
  explicit LoopbackTransport(QueryDispatcher* dispatcher)
      : dispatcher_(dispatcher), parser_(kMaxFrameBytes, kMaxPushFrameBytes) {}

  bool Connect(const std::string&, uint16_t, uint64_t) override {
    connected_ = true;
    return true;
  }

  bool Send(std::string_view bytes, uint64_t) override {
    if (!connected_) return false;
    parser_.Feed(bytes);
    while (auto payload = parser_.Next()) {
      out_ += EncodeFrame(dispatcher_->Handle(*payload));
    }
    return true;
  }

  bool Recv(std::string* out, size_t max_bytes, uint64_t) override {
    if (!connected_ || out_.empty()) return false;  // "deadline expired"
    const size_t n = std::min(max_bytes, out_.size());
    out->append(out_, 0, n);
    out_.erase(0, n);
    return true;
  }

  void Close() override {
    connected_ = false;
    out_.clear();
    parser_ = FrameParser(kMaxFrameBytes, kMaxPushFrameBytes);
  }

  bool connected() const override { return connected_; }

 private:
  QueryDispatcher* dispatcher_;
  FrameParser parser_;
  std::string out_;
  bool connected_ = false;
};

struct PusherFixture {
  PusherFixture()
      : aggregator(SmallConfig(), &hub),
        dispatcher(hub, codec, 0),
        loopback(&dispatcher),
        faulty(&loopback, FaultyTransportConfig{}, &clock) {
    dispatcher.AttachAggregator(&aggregator);
    SketchPusherConfig config;
    config.node_id = 3;
    pusher.emplace(config, &faulty, &clock);
  }

  ReadSnapshotHub hub;
  NumericKeyCodec codec;
  AggregatorCore aggregator;
  QueryDispatcher dispatcher;
  LoopbackTransport loopback;
  FakeClock clock;
  FaultyTransport faulty;
  std::optional<SketchPusher> pusher;
};

TEST(SketchPusher, RetriesThroughTransportFaultsUntilDelivered) {
  PusherFixture fx;
  // Two refused connects, then a torn frame: three full re-attempts
  // before the fourth lands. The FakeClock eats the backoff sleeps.
  fx.faulty.Arm(TransportFault::kRefuseConnect, 2);
  fx.faulty.Arm(TransportFault::kShortWrite, 1);

  const auto result =
      fx.pusher->Push(MakeSketch(SmallConfig(), {1, 2, 3}, 5), 1, 15);
  EXPECT_TRUE(result.delivered);
  EXPECT_TRUE(result.applied);
  EXPECT_FALSE(result.terminal);
  EXPECT_EQ(fx.pusher->attempts(), 4u);
  EXPECT_EQ(fx.pusher->retries(), 3u);
  EXPECT_EQ(fx.pusher->delivered(), 1u);
  EXPECT_EQ(fx.faulty.total_faults_injected(), 3u);
  EXPECT_EQ(fx.aggregator.merges_total(), 1u);
  // The backoff slept between attempts, per the policy's schedule.
  EXPECT_EQ(fx.clock.sleeps_usec().size(), 3u);
}

TEST(SketchPusher, LostAckRetryIsDedupedNotDoubleCounted) {
  PusherFixture fx;
  // The frame delivers, the ack is lost: the aggregator applied the
  // push, the client cannot know, and retries a delivered push. The
  // retry must be acked as a duplicate, not merged twice.
  fx.faulty.Arm(TransportFault::kDropAck, 1);

  const Ltc image = MakeSketch(SmallConfig(), {7, 8}, 6);
  const auto result = fx.pusher->Push(image, 1, 12);
  EXPECT_TRUE(result.delivered);
  EXPECT_FALSE(result.applied);  // the surviving ack is the duplicate's
  EXPECT_EQ(fx.pusher->attempts(), 2u);
  EXPECT_EQ(fx.aggregator.merges_total(), 1u);

  // Bit-identical to a single clean delivery.
  AggregatorCore oracle(SmallConfig(), nullptr);
  ASSERT_TRUE(oracle.ApplyPush(MakePush(3, 1, image, 12)).applied);
  EXPECT_EQ(fx.aggregator.SerializeMerged(), oracle.SerializeMerged());
}

TEST(SketchPusher, TypedRejectionIsTerminalAndStopsTheRetryLoop) {
  PusherFixture fx;
  LtcConfig wrong = SmallConfig();
  wrong.memory_bytes *= 2;

  auto result = fx.pusher->Push(MakeSketch(wrong, {1}), 1, 1);
  EXPECT_FALSE(result.delivered);
  EXPECT_TRUE(result.terminal);
  EXPECT_EQ(result.status, Status::kErrShapeMismatch);
  EXPECT_EQ(fx.pusher->attempts(), 1u);  // no retry can fix a shape
  EXPECT_EQ(fx.pusher->rejected(), 1u);

  // Undeserializable bytes are equally terminal.
  result = fx.pusher->PushSerialized("not a sketch", 2, 1);
  EXPECT_TRUE(result.terminal);
  EXPECT_EQ(result.status, Status::kErrBadSketch);
  EXPECT_EQ(fx.pusher->attempts(), 2u);
  EXPECT_EQ(fx.aggregator.merges_total(), 0u);
}

TEST(SketchPusher, GivesUpAfterTheRetryBudgetAgainstADeadAggregator) {
  ReadSnapshotHub hub;
  NumericKeyCodec codec;
  QueryDispatcher dispatcher(hub, codec, 0);
  LoopbackTransport loopback(&dispatcher);
  FakeClock clock;
  FaultyTransportConfig storm;
  storm.refuse_probability = 1.0;  // the aggregator is just gone
  FaultyTransport faulty(&loopback, storm, &clock);
  SketchPusherConfig config;
  config.node_id = 1;
  config.retry.max_attempts = 5;
  SketchPusher pusher(config, &faulty, &clock);

  const auto result = pusher.Push(MakeSketch(SmallConfig(), {1}), 1, 1);
  EXPECT_FALSE(result.delivered);
  EXPECT_FALSE(result.terminal);
  EXPECT_FALSE(result.error.empty());
  EXPECT_EQ(pusher.attempts(), 5u);
  EXPECT_EQ(pusher.retries(), 4u);
  EXPECT_EQ(pusher.delivered(), 0u);
}

}  // namespace
}  // namespace server
}  // namespace ltc
