#include "core/windowed_ltc.h"

#include <cassert>

namespace ltc {
namespace {

LtcConfig MakePaneConfig(LtcConfig config) {
  assert(config.period_mode == PeriodMode::kTimeBased);
  config.memory_bytes /= 2;
  return config;
}

}  // namespace

WindowedLtc::WindowedLtc(const LtcConfig& config, uint32_t window_periods)
    : pane_config_(MakePaneConfig(config)),
      window_periods_(window_periods),
      pane_periods_((window_periods + 1) / 2),
      active_(pane_config_),
      previous_(pane_config_) {
  assert(window_periods >= 2);
}

uint64_t WindowedLtc::PaneOf(double time) const {
  double pane_span =
      pane_config_.period_seconds * static_cast<double>(pane_periods_);
  return static_cast<uint64_t>(time / pane_span);
}

void WindowedLtc::Rotate(uint64_t pane_index) {
  if (pane_index == current_pane_ + 1) {
    // Adjacent pane: the active pane becomes the "previous" half of the
    // window. Finalize commits its pending period flags — it will only
    // be read from now on.
    active_.Finalize();
    previous_ = std::move(active_);
    previous_live_ = true;
  } else {
    // Jumped over at least one empty pane: nothing recent survives.
    previous_ = Ltc(pane_config_);
    previous_live_ = false;
  }
  active_ = Ltc(pane_config_);
  current_pane_ = pane_index;
}

void WindowedLtc::Insert(ItemId item, double time) {
  uint64_t pane = PaneOf(time);
  if (pane != current_pane_) {
    assert(pane > current_pane_ && "timestamps must be nondecreasing");
    Rotate(pane);
  }
  // Each pane's internal clock runs on pane-relative time so its CLOCK
  // sweep stays aligned with global periods regardless of rotation.
  double pane_start = static_cast<double>(pane) * pane_periods_ *
                      pane_config_.period_seconds;
  active_.Insert(item, time - pane_start);
}

std::vector<Ltc::Report> WindowedLtc::TopK(size_t k) const {
  // Merge copies: time-partitioned panes make MergeFrom exact.
  Ltc combined = active_;
  combined.Finalize();
  if (previous_live_) {
    combined.MergeFrom(previous_);
  }
  return combined.TopK(k);
}

double WindowedLtc::QuerySignificance(ItemId item) const {
  Ltc snapshot = active_;
  snapshot.Finalize();
  double total = snapshot.QuerySignificance(item);
  if (previous_live_) total += previous_.QuerySignificance(item);
  return total;
}

uint64_t WindowedLtc::WindowStartPeriod() const {
  if (!previous_live_ || current_pane_ == 0) {
    return current_pane_ * pane_periods_;
  }
  return (current_pane_ - 1) * pane_periods_;
}

}  // namespace ltc
