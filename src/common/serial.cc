#include "common/serial.h"

#include <cstdio>

namespace ltc {

bool WriteFile(const std::string& path, std::string_view contents) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  size_t written = contents.empty()
                       ? 0
                       : std::fwrite(contents.data(), 1, contents.size(), f);
  bool ok = written == contents.size();
  ok = (std::fclose(f) == 0) && ok;
  return ok;
}

std::optional<std::string> ReadFileToString(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return std::nullopt;
  std::string out;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    out.append(buf, n);
  }
  bool ok = std::ferror(f) == 0;
  std::fclose(f);
  if (!ok) return std::nullopt;
  return out;
}

}  // namespace ltc
