// SketchStore — the front door of the crash-safe, larger-than-RAM,
// multi-tenant sketch store (ROADMAP item 4; docs/DURABILITY.md "Paged
// store, WAL, and incremental checkpoints").
//
// One store directory hosts N independent tenant sketches (numeric
// tenant ids — per-customer / per-API-key sketch families). Each
// sketch lives as CRC-framed page files (store/page.h) behind a
// CLOCK-evicting buffer pool under a configurable memory budget, so
// total sketch bytes can exceed RAM: cold tenants' pages spill to
// disk and page back in on demand, bit-identically.
//
// Durability contract — the log-before-dirty rule:
//
//   Put() serializes the sketch, splits it into pages, and diffs them
//   against the resident/on-disk images. The changed pages are
//   appended to the WAL as ONE record and fsynced BEFORE any in-memory
//   frame is updated or marked dirty. Page-file write-back (eviction,
//   CheckpointDirty) therefore never persists bytes the log does not
//   already carry, and a kill at ANY operation recovers every tenant
//   to either its pre-Put or post-Put image — never a mix
//   (tests/store_crash_test.cc sweeps every kill point).
//
// CheckpointDirty() write-backs only dirty frames and then truncates
// the WAL: O(dirty) instead of the monolithic snapshot's O(table)
// (bench_ingest "incremental vs monolithic" section measures this).

#ifndef LTC_STORE_SKETCH_STORE_H_
#define LTC_STORE_SKETCH_STORE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/ltc.h"
#include "snapshot/fs.h"
#include "store/buffer_pool.h"
#include "store/disk_manager.h"
#include "store/recovery.h"
#include "telemetry/metrics.h"

namespace ltc {
namespace store {

struct SketchStoreOptions {
  /// Data-page payload size. Smaller pages mean finer dirty tracking
  /// (cheaper incremental checkpoints) but more frames and files.
  size_t page_bytes = 4096;

  /// Buffer-pool budget; the pool holds budget / page_bytes frames
  /// (at least one). May be far smaller than total sketch bytes.
  size_t mem_budget_bytes = size_t{64} << 20;
};

class SketchStore {
 public:
  struct Stats {
    uint64_t puts = 0;
    uint64_t gets = 0;
    uint64_t wal_records = 0;
    uint64_t wal_bytes = 0;
    uint64_t checkpoints = 0;
    uint64_t clean_puts = 0;  // Puts that changed no page (no log write)
  };

  /// Opens (and crash-recovers) the store in `dir`, which must exist.
  /// Replays the WAL over the page files first — see store/recovery.h.
  /// nullptr + `error` on I/O failure.
  static std::unique_ptr<SketchStore> Open(Fs& fs, const std::string& dir,
                                           const SketchStoreOptions& options,
                                           std::string* error);

  /// Upserts the tenant's sketch. Only changed pages are logged and
  /// dirtied; an unchanged sketch writes nothing. A tenant's geometry
  /// (page count) is fixed at first Put.
  bool Put(uint64_t tenant, const Ltc& sketch, std::string* error);

  /// Reassembles the tenant's sketch from resident frames and page
  /// files. nullopt + `error` for unknown tenants, missing/corrupt
  /// pages, or a payload Deserialize rejects.
  std::optional<Ltc> Get(uint64_t tenant, std::string* error);

  /// Writes back the tenant's dirty frames and drops all its frames —
  /// the explicit make-this-tenant-cold hammer.
  bool EvictTenant(uint64_t tenant, std::string* error);

  /// Incremental checkpoint: write back every dirty frame, then
  /// truncate the WAL. O(dirty), not O(table).
  bool CheckpointDirty(std::string* error);

  bool Contains(uint64_t tenant) const {
    return tenant_pages_.count(tenant) > 0;
  }
  std::vector<uint64_t> Tenants() const;

  /// Pages the tenant occupies (0 when unknown).
  uint32_t PageCountOf(uint64_t tenant) const;

  void AttachMetrics(telemetry::MetricsRegistry* registry);

  const Stats& stats() const { return stats_; }
  const RecoveryReport& recovery() const { return recovery_; }
  const BufferPool& pool() const { return *pool_; }

 private:
  SketchStore(Fs& fs, const std::string& dir,
              const SketchStoreOptions& options);

  /// Sets `error` and returns true when a partially-applied commit
  /// left memory behind the WAL (reopen to recover).
  bool Poisoned(std::string* error) const;

  /// Mirrors pool counters/gauges into the registry (if attached).
  void PublishMetrics();

  SketchStoreOptions options_;
  DiskManager disk_;
  std::unique_ptr<BufferPool> pool_;
  std::map<uint64_t, uint32_t> tenant_pages_;
  RecoveryReport recovery_;
  uint64_t next_lsn_ = 1;
  bool wal_dir_synced_ = false;  // wal.log's dirent made durable yet?
  bool poisoned_ = false;
  Stats stats_;

  telemetry::MetricsRegistry* metrics_ = nullptr;
  telemetry::Counter* pages_in_ = nullptr;
  telemetry::Counter* pages_out_ = nullptr;
  telemetry::Counter* page_hits_ = nullptr;
  telemetry::Counter* page_misses_ = nullptr;
  telemetry::Counter* evictions_clean_ = nullptr;
  telemetry::Counter* evictions_dirty_ = nullptr;
  telemetry::Counter* wal_records_ = nullptr;
  telemetry::Counter* wal_bytes_ = nullptr;
  telemetry::Counter* checkpoints_ = nullptr;
  telemetry::Gauge* tenants_gauge_ = nullptr;
  telemetry::Gauge* frames_resident_ = nullptr;
  telemetry::Gauge* frames_dirty_ = nullptr;
  telemetry::Histogram* checkpoint_duration_usec_ = nullptr;
  telemetry::Histogram* checkpoint_dirty_pages_ = nullptr;
};

}  // namespace store
}  // namespace ltc

#endif  // LTC_STORE_SKETCH_STORE_H_
