// Query-serving battery (docs/SERVING.md): golden frames for the LTCQ
// wire protocol, every dispatcher error path, socket-level round trips
// against a live QueryServer, and a seeded shrinking fuzz loop that
// hammers the dispatcher with malformed bytes.
//
// The protocol's central claim is TOTALITY: for EVERY byte string a
// client can put inside a frame, the server answers a decodable
// response — kOk with the answer or a typed error — and never crashes,
// hangs, or drops the connection silently (oversized frames excepted,
// which get a typed error and then a clean close).

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <memory>
#include <optional>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/ltc.h"
#include "core/read_snapshot.h"
#include "server/dispatcher.h"
#include "server/key_codec.h"
#include "server/protocol.h"
#include "server/query_server.h"
#include "stream/interner.h"

namespace ltc {
namespace server {
namespace {

LtcConfig SmallConfig() {
  LtcConfig config;
  config.memory_bytes = 16 * 1024;
  config.period_mode = PeriodMode::kCountBased;
  config.items_per_period = 100;
  return config;
}

/// A hub holding one published snapshot of a small table: items 1..20,
/// item i inserted i times.
struct Fixture {
  Fixture() {
    Ltc table(SmallConfig());
    for (ItemId item = 1; item <= 20; ++item) {
      for (ItemId n = 0; n < item; ++n) table.Insert(item);
    }
    records = 20 * 21 / 2;
    hub.Publish(std::make_unique<Ltc>(table), records);
  }

  ReadSnapshotHub hub;
  NumericKeyCodec codec;
  uint64_t records = 0;
};

std::string HexDump(std::string_view bytes) {
  static const char* kHex = "0123456789abcdef";
  std::string out;
  for (unsigned char c : bytes) {
    out += kHex[c >> 4];
    out += kHex[c & 0xf];
  }
  return out;
}

// --- Framing ---------------------------------------------------------

TEST(FrameParser, SplitsPipelinedFramesAcrossArbitraryFeeds) {
  const std::string wire = EncodeFrame("abc") + EncodeFrame("") +
                           EncodeFrame(std::string(1000, 'x'));
  // Feed one byte at a time: framing must not depend on read sizes.
  FrameParser parser;
  std::vector<std::string> payloads;
  for (char c : wire) {
    parser.Feed(std::string_view(&c, 1));
    while (auto payload = parser.Next()) payloads.push_back(*payload);
  }
  ASSERT_EQ(payloads.size(), 3u);
  EXPECT_EQ(payloads[0], "abc");
  EXPECT_EQ(payloads[1], "");
  EXPECT_EQ(payloads[2], std::string(1000, 'x'));
  EXPECT_EQ(parser.buffered_bytes(), 0u);
}

TEST(FrameParser, OversizedDeclaredLengthPoisonsTheStream) {
  FrameParser parser(64);
  std::string frame = EncodeFrame(std::string(65, 'x'));
  parser.Feed(frame);
  EXPECT_FALSE(parser.Next().has_value());
  EXPECT_TRUE(parser.oversized());
  // Poisoned for good: even a valid follow-up frame is not parsed (the
  // stream position can no longer be trusted).
  parser.Feed(EncodeFrame("ok"));
  EXPECT_FALSE(parser.Next().has_value());
}

TEST(Protocol, GoldenRequestFrames) {
  // Framed PING: length 1, opcode 0x01.
  EXPECT_EQ(HexDump(EncodeFrame(EncodePingRequest())), "0100000001");
  // Framed STATS: length 1, opcode 0x06.
  EXPECT_EQ(HexDump(EncodeFrame(EncodeStatsRequest())), "0100000006");
  // Framed TOPK k=5: length 5, opcode 0x02, u32 LE 5.
  EXPECT_EQ(HexDump(EncodeFrame(EncodeTopKRequest(5))), "050000000205000000");
  // Framed ESTIMATE_FREQUENCY "ab": length 5, opcode 0x04, u16 LE 2, "ab".
  EXPECT_EQ(HexDump(EncodeFrame(
                EncodeEstimateRequest(Opcode::kEstimateFrequency, "ab"))),
            "0500000004" "0200" "6162");
}

TEST(Protocol, ResponsesRoundTrip) {
  const auto ping =
      DecodeResponse(Opcode::kPing, EncodePingResponse(7, 1234));
  ASSERT_TRUE(ping.has_value());
  EXPECT_EQ(ping->status, Status::kOk);
  EXPECT_EQ(ping->snapshot_seq, 7u);
  EXPECT_EQ(ping->records, 1234u);

  std::vector<TopKEntry> entries(2);
  entries[0] = {"alpha", 10, 3, 13.5};
  entries[1] = {"beta", 4, 2, 6.0};
  const auto topk = DecodeResponse(Opcode::kTopK, EncodeTopKResponse(entries));
  ASSERT_TRUE(topk.has_value());
  ASSERT_EQ(topk->topk.size(), 2u);
  EXPECT_EQ(topk->topk[0].key, "alpha");
  EXPECT_EQ(topk->topk[0].frequency, 10u);
  EXPECT_EQ(topk->topk[1].persistency, 2u);
  EXPECT_DOUBLE_EQ(topk->topk[1].significance, 6.0);

  const auto sig = DecodeResponse(Opcode::kEstimateSignificance,
                                  EncodeDoubleResponse(2.75));
  ASSERT_TRUE(sig.has_value());
  EXPECT_DOUBLE_EQ(sig->value_double, 2.75);

  const auto freq =
      DecodeResponse(Opcode::kEstimateFrequency, EncodeU64Response(99));
  ASSERT_TRUE(freq.has_value());
  EXPECT_EQ(freq->value_u64, 99u);

  StatsResult stats;
  stats.snapshot_seq = 3;
  stats.records = 500;
  stats.memory_bytes = 65536;
  stats.num_shards = 4;
  const auto decoded =
      DecodeResponse(Opcode::kStats, EncodeStatsResponse(stats));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->stats.snapshot_seq, 3u);
  EXPECT_EQ(decoded->stats.records, 500u);
  EXPECT_EQ(decoded->stats.memory_bytes, 65536u);
  EXPECT_EQ(decoded->stats.num_shards, 4u);
  EXPECT_EQ(decoded->stats.protocol_version, kProtocolVersion);

  const auto error = DecodeResponse(
      Opcode::kPing, EncodeErrorResponse(Status::kErrBadKey, "nope"));
  ASSERT_TRUE(error.has_value());
  EXPECT_EQ(error->status, Status::kErrBadKey);
  EXPECT_EQ(error->error_detail, "nope");
}

TEST(Protocol, DecodeRejectsTamperedResponses) {
  // Truncated PING body.
  std::string ping = EncodePingResponse(1, 2);
  EXPECT_FALSE(DecodeResponse(Opcode::kPing, ping.substr(0, ping.size() - 1))
                   .has_value());
  // Trailing garbage.
  EXPECT_FALSE(DecodeResponse(Opcode::kPing, ping + "x").has_value());
  // Empty payload.
  EXPECT_FALSE(DecodeResponse(Opcode::kPing, "").has_value());
  // Unknown status byte.
  EXPECT_FALSE(DecodeResponse(Opcode::kPing, "\x7f").has_value());
  // TOPK claiming more entries than the bytes hold.
  std::string topk = EncodeTopKResponse({{"k", 1, 1, 1.0}});
  topk[1] = 50;  // entry count (first byte of the u32 after the status)
  EXPECT_FALSE(DecodeResponse(Opcode::kTopK, topk).has_value());
}

// --- Key codecs ------------------------------------------------------

TEST(KeyCodec, NumericParsesExactDecimalOnly) {
  NumericKeyCodec codec;
  EXPECT_EQ(codec.Resolve("0"), ItemId{0});
  EXPECT_EQ(codec.Resolve("42"), ItemId{42});
  EXPECT_EQ(codec.Resolve("18446744073709551615"), ~ItemId{0});
  EXPECT_FALSE(codec.Resolve("").has_value());
  EXPECT_FALSE(codec.Resolve("-1").has_value());
  EXPECT_FALSE(codec.Resolve("4 2").has_value());
  EXPECT_FALSE(codec.Resolve("0x10").has_value());
  EXPECT_FALSE(codec.Resolve("18446744073709551616").has_value());  // 2^64
  EXPECT_EQ(codec.NameOf(42), "42");
}

TEST(KeyCodec, InternerResolvesKnownTokensAndZerosUnknown) {
  StringInterner interner;
  const ItemId apple = interner.Intern("apple");
  const ItemId pear = interner.Intern("pear");
  InternerKeyCodec codec(interner);
  EXPECT_EQ(codec.Resolve("apple"), apple);
  EXPECT_EQ(codec.Resolve("pear"), pear);
  // Unknown but well-formed: resolves to the untracked id 0 (answered
  // with zero estimates), NOT an error.
  EXPECT_EQ(codec.Resolve("zebra"), ItemId{0});
  EXPECT_FALSE(codec.Resolve("").has_value());
  EXPECT_EQ(codec.NameOf(apple), "apple");
  EXPECT_EQ(codec.NameOf(0), "0");  // out of range: numeric fallback
}

// --- Dispatcher: answers ---------------------------------------------

TEST(Dispatcher, AnswersMatchThePinnedSnapshot) {
  Fixture fx;
  QueryDispatcher dispatcher(fx.hub, fx.codec, 0);

  const auto ping =
      DecodeResponse(Opcode::kPing, dispatcher.Handle(EncodePingRequest()));
  ASSERT_TRUE(ping.has_value());
  EXPECT_EQ(ping->status, Status::kOk);
  EXPECT_EQ(ping->snapshot_seq, 1u);
  EXPECT_EQ(ping->records, fx.records);

  const ReadSnapshotHub::Ref pinned = fx.hub.Acquire();
  ASSERT_TRUE(pinned);
  for (ItemId item = 1; item <= 20; ++item) {
    const std::string key = std::to_string(item);
    const auto freq = DecodeResponse(
        Opcode::kEstimateFrequency,
        dispatcher.Handle(EncodeEstimateRequest(Opcode::kEstimateFrequency,
                                                key)));
    ASSERT_TRUE(freq.has_value()) << key;
    EXPECT_EQ(freq->status, Status::kOk);
    EXPECT_EQ(freq->value_u64, pinned->table->EstimateFrequency(item)) << key;

    const auto sig = DecodeResponse(
        Opcode::kEstimateSignificance,
        dispatcher.Handle(
            EncodeEstimateRequest(Opcode::kEstimateSignificance, key)));
    ASSERT_TRUE(sig.has_value()) << key;
    EXPECT_EQ(sig->value_double, pinned->table->QuerySignificance(item));

    const auto pers = DecodeResponse(
        Opcode::kEstimatePersistency,
        dispatcher.Handle(
            EncodeEstimateRequest(Opcode::kEstimatePersistency, key)));
    ASSERT_TRUE(pers.has_value()) << key;
    EXPECT_EQ(pers->value_u64, pinned->table->EstimatePersistency(item));
  }

  const auto topk =
      DecodeResponse(Opcode::kTopK, dispatcher.Handle(EncodeTopKRequest(5)));
  ASSERT_TRUE(topk.has_value());
  EXPECT_EQ(topk->status, Status::kOk);
  const auto oracle = pinned->table->TopK(5);
  ASSERT_EQ(topk->topk.size(), oracle.size());
  for (size_t i = 0; i < oracle.size(); ++i) {
    EXPECT_EQ(topk->topk[i].key, std::to_string(oracle[i].item)) << i;
    EXPECT_EQ(topk->topk[i].frequency, oracle[i].frequency) << i;
    EXPECT_EQ(topk->topk[i].persistency, oracle[i].persistency) << i;
    EXPECT_EQ(topk->topk[i].significance, oracle[i].significance) << i;
  }

  const auto stats =
      DecodeResponse(Opcode::kStats, dispatcher.Handle(EncodeStatsRequest()));
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(stats->stats.snapshot_seq, 1u);
  EXPECT_EQ(stats->stats.records, fx.records);
  EXPECT_EQ(stats->stats.memory_bytes, pinned->table->MemoryBytes());
  EXPECT_EQ(stats->stats.num_shards, 0u);
}

TEST(Dispatcher, UntrackedKeyAnswersZeros) {
  Fixture fx;
  QueryDispatcher dispatcher(fx.hub, fx.codec, 0);
  const auto freq = DecodeResponse(
      Opcode::kEstimateFrequency,
      dispatcher.Handle(
          EncodeEstimateRequest(Opcode::kEstimateFrequency, "999999")));
  ASSERT_TRUE(freq.has_value());
  EXPECT_EQ(freq->status, Status::kOk);
  EXPECT_EQ(freq->value_u64, 0u);
}

// --- Dispatcher: every error path ------------------------------------

/// Expects `payload` to be answered with exactly `status`, and the
/// response to be decodable as an error frame.
void ExpectError(QueryDispatcher& dispatcher, std::string_view payload,
                 Status status) {
  const std::string response = dispatcher.Handle(payload);
  const auto decoded = DecodeResponse(Opcode::kPing, response);
  ASSERT_TRUE(decoded.has_value()) << HexDump(payload);
  EXPECT_EQ(decoded->status, status)
      << HexDump(payload) << " detail: " << decoded->error_detail;
  EXPECT_FALSE(decoded->error_detail.empty()) << HexDump(payload);
}

TEST(Dispatcher, TypedErrorForEveryMalformedShape) {
  Fixture fx;
  QueryDispatcher dispatcher(fx.hub, fx.codec, 0);

  // Empty payload and unknown opcodes.
  ExpectError(dispatcher, "", Status::kErrMalformed);
  ExpectError(dispatcher, std::string_view("\x00", 1),
              Status::kErrUnknownOpcode);
  ExpectError(dispatcher, "\x09", Status::kErrUnknownOpcode);
  ExpectError(dispatcher, "\xff", Status::kErrUnknownOpcode);

  // 0x07 (PUSH_SKETCH, v2) is assigned, but this dispatcher has no
  // aggregator attached — the refusal is typed, not unknown-opcode.
  ExpectError(dispatcher, "\x07", Status::kErrNotAggregator);

  // 0x08 (DUMP_TRACE, v3) is assigned, but no flight recorder is
  // installed here — again typed, not unknown-opcode.
  ExpectError(dispatcher, "\x08", Status::kErrBadRequest);
  ExpectError(dispatcher, "\x08junk", Status::kErrMalformed);

  // Bodies on body-less opcodes.
  ExpectError(dispatcher, "\x01junk", Status::kErrMalformed);
  ExpectError(dispatcher, "\x06junk", Status::kErrMalformed);

  // TOPK body size and range.
  ExpectError(dispatcher, "\x02", Status::kErrMalformed);       // no k
  ExpectError(dispatcher, std::string("\x02\x05\x00\x00", 4),
              Status::kErrMalformed);                           // short u32
  ExpectError(dispatcher, std::string("\x02\x05\x00\x00\x00\x00", 6),
              Status::kErrMalformed);                           // trailing
  ExpectError(dispatcher, std::string("\x02\x00\x00\x00\x00", 5),
              Status::kErrBadRequest);                          // k == 0
  ExpectError(dispatcher, EncodeTopKRequest(kMaxTopK + 1),
              Status::kErrBadRequest);                          // k too big

  // Estimate bodies: truncated length, truncated key, trailing bytes,
  // zero-length key, unresolvable key.
  ExpectError(dispatcher, "\x03", Status::kErrMalformed);
  ExpectError(dispatcher, std::string("\x03\x05", 2), Status::kErrMalformed);
  ExpectError(dispatcher, std::string("\x03\x05\x00" "ab", 5),
              Status::kErrMalformed);  // claims 5 key bytes, has 2
  ExpectError(dispatcher, std::string("\x03\x01\x00" "abc", 6),
              Status::kErrMalformed);  // claims 1 key byte, has 3
  ExpectError(dispatcher, std::string("\x04\x00\x00", 3), Status::kErrBadKey);
  ExpectError(dispatcher, EncodeEstimateRequest(Opcode::kEstimateFrequency,
                                                "not-a-number"),
              Status::kErrBadKey);
}

TEST(Dispatcher, NoSnapshotYetIsATypedError) {
  ReadSnapshotHub empty_hub;
  NumericKeyCodec codec;
  QueryDispatcher dispatcher(empty_hub, codec, 0);
  ExpectError(dispatcher, EncodeTopKRequest(3), Status::kErrNoSnapshot);
  ExpectError(dispatcher,
              EncodeEstimateRequest(Opcode::kEstimateSignificance, "1"),
              Status::kErrNoSnapshot);
  // PING and STATS still answer: they probe liveness, not data.
  const auto ping =
      DecodeResponse(Opcode::kPing, dispatcher.Handle(EncodePingRequest()));
  ASSERT_TRUE(ping.has_value());
  EXPECT_EQ(ping->status, Status::kOk);
  EXPECT_EQ(ping->snapshot_seq, 0u);
  const auto stats =
      DecodeResponse(Opcode::kStats, dispatcher.Handle(EncodeStatsRequest()));
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(stats->stats.snapshot_seq, 0u);
}

// --- Malformed-bytes fuzz loop ---------------------------------------

/// True when the dispatcher's answer to `payload` is well formed: it
/// must decode as ok against the request's opcode, or as a typed error.
bool AnswerIsWellFormed(QueryDispatcher& dispatcher,
                        const std::string& payload) {
  const std::string response = dispatcher.Handle(payload);
  if (response.empty()) return false;
  const uint8_t status = static_cast<uint8_t>(response[0]);
  if (status != 0) {
    // Typed error: decodes as an error frame regardless of opcode.
    return DecodeResponse(Opcode::kPing, response).has_value();
  }
  // kOk: the payload must have carried a valid opcode, and the response
  // must decode against exactly that opcode.
  if (payload.empty()) return false;
  const uint8_t op = static_cast<uint8_t>(payload[0]);
  if (op < 1 || op > 6) return false;
  return DecodeResponse(static_cast<Opcode>(op), response).has_value();
}

/// Greedy byte-removal shrink: returns the smallest still-failing
/// payload, so a fuzz failure prints a minimal repro.
std::string Shrink(QueryDispatcher& dispatcher, std::string failing) {
  bool shrunk = true;
  while (shrunk) {
    shrunk = false;
    for (size_t i = 0; i < failing.size(); ++i) {
      std::string candidate = failing;
      candidate.erase(i, 1);
      if (!AnswerIsWellFormed(dispatcher, candidate)) {
        failing = std::move(candidate);
        shrunk = true;
        break;
      }
    }
  }
  return failing;
}

TEST(DispatcherFuzz, EveryByteStringGetsAWellFormedAnswer) {
  Fixture fx;
  QueryDispatcher dispatcher(fx.hub, fx.codec, 0);
  std::mt19937 rng(20260809);  // seeded: failures reproduce exactly

  std::vector<std::string> seeds = {
      EncodePingRequest(),
      EncodeTopKRequest(5),
      EncodeEstimateRequest(Opcode::kEstimateSignificance, "7"),
      EncodeEstimateRequest(Opcode::kEstimateFrequency, "12"),
      EncodeEstimateRequest(Opcode::kEstimatePersistency, "3"),
      EncodeStatsRequest(),
  };

  for (int iter = 0; iter < 20000; ++iter) {
    std::string payload;
    if (iter % 2 == 0) {
      // Mutated valid request: flip/insert/delete a few bytes.
      payload = seeds[rng() % seeds.size()];
      const int edits = 1 + static_cast<int>(rng() % 4);
      for (int e = 0; e < edits && !payload.empty(); ++e) {
        switch (rng() % 3) {
          case 0:
            payload[rng() % payload.size()] =
                static_cast<char>(rng() & 0xff);
            break;
          case 1:
            payload.insert(payload.begin() + (rng() % (payload.size() + 1)),
                           static_cast<char>(rng() & 0xff));
            break;
          default:
            payload.erase(payload.begin() + (rng() % payload.size()));
            break;
        }
      }
    } else {
      // Pure noise of random length (biased short, occasionally long).
      const size_t len = (iter % 20 == 1) ? 1 + rng() % 8192 : rng() % 32;
      payload.resize(len);
      for (char& c : payload) c = static_cast<char>(rng() & 0xff);
    }

    if (!AnswerIsWellFormed(dispatcher, payload)) {
      const std::string minimal = Shrink(dispatcher, payload);
      FAIL() << "iteration " << iter
             << ": ill-formed answer; minimal repro (hex): "
             << HexDump(minimal);
    }
  }
  // The fuzz traffic really exercised the dispatcher.
  EXPECT_EQ(dispatcher.stats().requests, 20000u);
}

// --- Socket-level round trips against a live QueryServer -------------

class TestClient {
 public:
  explicit TestClient(uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    connected_ = fd_ >= 0 &&
                 ::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                           sizeof(addr)) == 0;
  }
  ~TestClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool connected() const { return connected_; }

  bool SendRaw(std::string_view bytes) {
    size_t off = 0;
    while (off < bytes.size()) {
      const ssize_t n = ::send(fd_, bytes.data() + off, bytes.size() - off,
                               MSG_NOSIGNAL);
      if (n <= 0) return false;
      off += static_cast<size_t>(n);
    }
    return true;
  }

  /// Blocking-reads one response payload; nullopt on EOF/error.
  std::optional<std::string> RecvPayload() {
    while (true) {
      if (auto payload = parser_.Next()) return payload;
      char buf[4096];
      const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
      if (n <= 0) return std::nullopt;
      parser_.Feed(std::string_view(buf, static_cast<size_t>(n)));
    }
  }

  /// Reads until EOF; true when the peer closed cleanly.
  bool RecvEof() {
    char buf[4096];
    while (true) {
      const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
      if (n == 0) return true;
      if (n < 0) return false;
    }
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
  FrameParser parser_;
};

class QueryServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Ltc table(SmallConfig());
    for (ItemId item = 1; item <= 10; ++item) {
      for (ItemId n = 0; n < item; ++n) table.Insert(item);
    }
    hub_.Publish(std::make_unique<Ltc>(table), 55);
    server_.emplace(hub_, codec_, 0, QueryServerConfig{});
    std::string error;
    ASSERT_TRUE(server_->Start(&error)) << error;
    ASSERT_GT(server_->port(), 0);
  }

  ReadSnapshotHub hub_;
  NumericKeyCodec codec_;
  std::optional<QueryServer> server_;
};

TEST_F(QueryServerTest, ServesPipelinedRequestsInOrder) {
  TestClient client(server_->port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.SendRaw(
      EncodeFrame(EncodePingRequest()) + EncodeFrame(EncodeTopKRequest(3)) +
      EncodeFrame(EncodeEstimateRequest(Opcode::kEstimateFrequency, "10"))));

  const auto ping_payload = client.RecvPayload();
  ASSERT_TRUE(ping_payload.has_value());
  const auto ping = DecodeResponse(Opcode::kPing, *ping_payload);
  ASSERT_TRUE(ping.has_value());
  EXPECT_EQ(ping->status, Status::kOk);
  EXPECT_EQ(ping->snapshot_seq, 1u);
  EXPECT_EQ(ping->records, 55u);

  const auto topk_payload = client.RecvPayload();
  ASSERT_TRUE(topk_payload.has_value());
  const auto topk = DecodeResponse(Opcode::kTopK, *topk_payload);
  ASSERT_TRUE(topk.has_value());
  EXPECT_EQ(topk->status, Status::kOk);
  EXPECT_EQ(topk->topk.size(), 3u);

  const auto freq_payload = client.RecvPayload();
  ASSERT_TRUE(freq_payload.has_value());
  const auto freq = DecodeResponse(Opcode::kEstimateFrequency, *freq_payload);
  ASSERT_TRUE(freq.has_value());
  EXPECT_EQ(freq->status, Status::kOk);
  EXPECT_EQ(freq->value_u64, 10u);
}

TEST_F(QueryServerTest, MalformedFrameGetsTypedErrorAndConnectionSurvives) {
  TestClient client(server_->port());
  ASSERT_TRUE(client.connected());
  // Garbage payload inside a well-formed frame.
  ASSERT_TRUE(client.SendRaw(EncodeFrame("\xee junk")));
  const auto error_payload = client.RecvPayload();
  ASSERT_TRUE(error_payload.has_value());
  const auto error = DecodeResponse(Opcode::kPing, *error_payload);
  ASSERT_TRUE(error.has_value());
  EXPECT_EQ(error->status, Status::kErrUnknownOpcode);
  // The connection keeps working afterwards.
  ASSERT_TRUE(client.SendRaw(EncodeFrame(EncodePingRequest())));
  const auto pong_payload = client.RecvPayload();
  ASSERT_TRUE(pong_payload.has_value());
  EXPECT_EQ(DecodeResponse(Opcode::kPing, *pong_payload)->status, Status::kOk);
}

TEST_F(QueryServerTest, OversizedFrameGetsTypedErrorThenCleanClose) {
  TestClient client(server_->port());
  ASSERT_TRUE(client.connected());
  // Declared length beyond kMaxFrameBytes: poisoned stream.
  uint32_t huge = static_cast<uint32_t>(kMaxFrameBytes) + 1;
  char prefix[4];
  std::memcpy(prefix, &huge, 4);
  ASSERT_TRUE(client.SendRaw(std::string(prefix, 4)));
  const auto error_payload = client.RecvPayload();
  ASSERT_TRUE(error_payload.has_value());
  const auto error = DecodeResponse(Opcode::kPing, *error_payload);
  ASSERT_TRUE(error.has_value());
  EXPECT_EQ(error->status, Status::kErrOversized);
  EXPECT_TRUE(client.RecvEof());  // FIN, not RST
}

TEST_F(QueryServerTest, StopDrainsGracefully) {
  TestClient client(server_->port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.SendRaw(EncodeFrame(EncodePingRequest())));
  const auto pong = client.RecvPayload();
  ASSERT_TRUE(pong.has_value());
  server_->Stop();
  EXPECT_FALSE(server_->running());
  // The held connection was FIN'd, not reset.
  EXPECT_TRUE(client.RecvEof());
  EXPECT_EQ(server_->TotalRequests(), 1u);
}

TEST(QueryServerIdle, IdleConnectionsAreEvictedAndCounted) {
  ReadSnapshotHub hub;
  NumericKeyCodec codec;
  hub.Publish(std::make_unique<Ltc>(SmallConfig()), 0);
  QueryServerConfig config;
  config.idle_timeout_usec = 150'000;  // tiny, so the test stays fast
  QueryServer server(hub, codec, 0, config);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  TestClient idle_client(server.port());
  ASSERT_TRUE(idle_client.connected());
  // Activity arms the idle clock; then the client goes silent.
  ASSERT_TRUE(idle_client.SendRaw(EncodeFrame(EncodePingRequest())));
  ASSERT_TRUE(idle_client.RecvPayload().has_value());

  // The server FINs the idle connection on its own.
  EXPECT_TRUE(idle_client.RecvEof());
  EXPECT_EQ(server.ConnectionsIdleClosed(), 1u);

  // An active server is otherwise unaffected: a fresh connection works.
  TestClient fresh(server.port());
  ASSERT_TRUE(fresh.connected());
  ASSERT_TRUE(fresh.SendRaw(EncodeFrame(EncodePingRequest())));
  EXPECT_TRUE(fresh.RecvPayload().has_value());
  server.Stop();
}

TEST_F(QueryServerTest, CountersTrackTraffic) {
  {
    TestClient client(server_->port());
    ASSERT_TRUE(client.connected());
    ASSERT_TRUE(client.SendRaw(EncodeFrame(EncodePingRequest()) +
                               EncodeFrame("\xff")));
    ASSERT_TRUE(client.RecvPayload().has_value());
    ASSERT_TRUE(client.RecvPayload().has_value());
  }
  server_->Stop();
  EXPECT_EQ(server_->TotalRequests(), 2u);
  EXPECT_EQ(server_->TotalErrors(), 1u);
  EXPECT_EQ(server_->ConnectionsOpened(), 1u);
}

}  // namespace
}  // namespace server
}  // namespace ltc
