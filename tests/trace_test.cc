// Tracing battery (docs/TELEMETRY.md "Tracing & flight recorder"):
// flight-recorder units on a FakeClock (ring wrap, auto-parenting,
// remote-parent override, exemplars, budgeted dumps), golden frames
// for the v3 trace-context extension, the exact per-opcode split
// rules, and the dispatcher-level compatibility contract — an
// ext-bearing request answers byte-identically to its plain twin, a
// plain request is byte-identical to what a pre-v3 client sent, and
// every tampered ext-bearing payload still gets a decodable typed
// response (the same totality claim server_test.cc pins for base
// payloads).

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include <gtest/gtest.h>

#include "common/clock.h"
#include "core/ltc.h"
#include "core/read_snapshot.h"
#include "server/dispatcher.h"
#include "server/key_codec.h"
#include "server/protocol.h"
#include "server/push_client.h"
#include "telemetry/trace.h"

namespace ltc {
namespace server {
namespace {

namespace tel = ::ltc::telemetry;

std::string HexDump(std::string_view bytes) {
  static const char* kHex = "0123456789abcdef";
  std::string out;
  for (unsigned char c : bytes) {
    out += kHex[c >> 4];
    out += kHex[c & 0xf];
  }
  return out;
}

/// A hub holding one published snapshot of a small table, so the
/// dispatcher has data to answer with.
struct Fixture {
  Fixture() {
    LtcConfig config;
    config.memory_bytes = 16 * 1024;
    config.period_mode = PeriodMode::kCountBased;
    config.items_per_period = 100;
    Ltc table(config);
    for (ItemId item = 1; item <= 20; ++item) {
      for (ItemId n = 0; n < item; ++n) table.Insert(item);
    }
    hub.Publish(std::make_unique<Ltc>(table), 20 * 21 / 2);
  }

  ReadSnapshotHub hub;
  NumericKeyCodec codec;
};

#ifdef LTC_TRACING

/// Installs a recorder for one test scope and always uninstalls it, so
/// a failing assertion can't leak an active recorder into later tests.
struct Installed {
  explicit Installed(tel::FlightRecorder* recorder) {
    tel::FlightRecorder::Install(recorder);
  }
  ~Installed() { tel::FlightRecorder::Install(nullptr); }
};

// --- Flight recorder units (all on a FakeClock) ----------------------

TEST(TraceRecorder, SpanCommitsOneEventWithClockTimestamps) {
  FakeClock clock;
  clock.Advance(1000);
  tel::FlightRecorder recorder(&clock, 8);
  Installed active(&recorder);
  {
    tel::Span span("unit.scope");
    span.AddAttr("k", 42);
    clock.Advance(7);
  }
  const std::string json = recorder.DumpChromeJson();
  EXPECT_NE(json.find("\"name\":\"unit.scope\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"ts\":1000,\"dur\":7"), std::string::npos) << json;
  EXPECT_NE(json.find("\"k\":42"), std::string::npos) << json;
  EXPECT_NE(json.find("\"truncated\":false"), std::string::npos) << json;
}

TEST(TraceRecorder, NestedSpansAutoParentOnTheSameThread) {
  FakeClock clock;
  tel::FlightRecorder recorder(&clock, 8);
  Installed active(&recorder);
  tel::Span outer("unit.outer");
  ASSERT_TRUE(outer.recording());
  EXPECT_EQ(tel::CurrentTraceContext().span_id, outer.context().span_id);
  {
    tel::Span inner("unit.inner");
    // Same trace, parented under the innermost live span.
    EXPECT_EQ(inner.context().trace_id, outer.context().trace_id);
    EXPECT_NE(inner.context().span_id, outer.context().span_id);
    EXPECT_EQ(tel::CurrentTraceContext().span_id, inner.context().span_id);
  }
  // Inner's destruction restores the outer as current.
  EXPECT_EQ(tel::CurrentTraceContext().span_id, outer.context().span_id);
}

TEST(TraceRecorder, RemoteParentOverridesTheThreadLocalChain) {
  FakeClock clock;
  tel::FlightRecorder recorder(&clock, 8);
  Installed active(&recorder);
  tel::Span local("unit.local");
  const tel::TraceContext remote{0x1111222233334444ULL,
                                 0x5555666677778888ULL};
  tel::Span span("unit.remote_child", remote);
  // The remote context wins over the live local span.
  EXPECT_EQ(span.context().trace_id, remote.trace_id);
  EXPECT_NE(span.context().trace_id, local.context().trace_id);
}

TEST(TraceRecorder, RingWrapKeepsTheNewestSpans) {
  FakeClock clock;
  tel::FlightRecorder recorder(&clock, 4);
  Installed active(&recorder);
  for (uint64_t i = 0; i < 10; ++i) {
    tel::Span span("unit.wrap");
    span.AddAttr("i", i);
    clock.Advance(1);
  }
  const std::string json = recorder.DumpChromeJson();
  // Only the last ring-size spans survive; the earliest are gone.
  EXPECT_NE(json.find("\"i\":9"), std::string::npos) << json;
  EXPECT_NE(json.find("\"i\":6"), std::string::npos) << json;
  EXPECT_EQ(json.find("\"i\":5"), std::string::npos) << json;
  EXPECT_EQ(json.find("\"i\":0"), std::string::npos) << json;
}

TEST(TraceRecorder, WorstSpansPicksTheLongestPerName) {
  FakeClock clock;
  tel::FlightRecorder recorder(&clock, 16);
  Installed active(&recorder);
  for (uint64_t usec : {5, 50, 20}) {
    tel::Span span("unit.varied");
    clock.Advance(usec);
  }
  {
    tel::Span span("unit.other");
    clock.Advance(7);
  }
  const auto exemplars = recorder.WorstSpans();
  ASSERT_EQ(exemplars.size(), 2u);
  uint64_t varied = 0, other = 0;
  for (const auto& e : exemplars) {
    if (e.name == "unit.varied") varied = e.duration_usec;
    if (e.name == "unit.other") other = e.duration_usec;
    EXPECT_NE(e.trace_id, 0u);
  }
  EXPECT_EQ(varied, 50u);
  EXPECT_EQ(other, 7u);
}

TEST(TraceRecorder, BudgetedDumpKeepsNewestAndFlagsTruncation) {
  FakeClock clock;
  tel::FlightRecorder recorder(&clock, 64);
  Installed active(&recorder);
  for (uint64_t i = 0; i < 64; ++i) {
    tel::Span span("unit.budget");
    span.AddAttr("i", i);
    clock.Advance(1);
  }
  const std::string full = recorder.DumpChromeJson();
  const std::string capped = recorder.DumpChromeJson(800);
  EXPECT_LE(capped.size(), 800u);
  EXPECT_LT(capped.size(), full.size());
  EXPECT_NE(capped.find("\"truncated\":true"), std::string::npos) << capped;
  // The newest event survives the cut; the oldest does not.
  EXPECT_NE(capped.find("\"i\":63"), std::string::npos) << capped;
  EXPECT_EQ(capped.find("\"i\":0,"), std::string::npos) << capped;
}

TEST(TraceRecorder, NoActiveRecorderMeansFreeSpans) {
  ASSERT_EQ(tel::FlightRecorder::active(), nullptr);
  tel::Span span("unit.idle");
  EXPECT_FALSE(span.recording());
  EXPECT_FALSE(span.context().valid());
  EXPECT_FALSE(tel::CurrentTraceContext().valid());
}

TEST(TraceRecorder, DestructionUninstallsItself) {
  {
    FakeClock clock;
    tel::FlightRecorder recorder(&clock, 8);
    tel::FlightRecorder::Install(&recorder);
    EXPECT_EQ(tel::FlightRecorder::active(), &recorder);
  }
  EXPECT_EQ(tel::FlightRecorder::active(), nullptr);
}

#endif  // LTC_TRACING

// --- v3 trace-context extension: wire format -------------------------
// These run in BOTH build flavors: the protocol layer has no LTC_TRACING
// dependency, so an LTC_TRACING=OFF server still splits (and ignores)
// extensions from traced clients.

TEST(TraceExt, GoldenFrames) {
  // Framed DUMP_TRACE: length 1, opcode 0x08.
  EXPECT_EQ(HexDump(EncodeFrame(EncodeDumpTraceRequest())), "0100000008");

  // Framed PING + ext: length 19, opcode, magic "TC" (0x5443 LE),
  // trace_id, span_id — all little-endian.
  std::string payload = EncodePingRequest();
  AppendTraceExt(&payload, {0x1122334455667788ULL, 0x99aabbccddeeff00ULL});
  EXPECT_EQ(HexDump(EncodeFrame(payload)),
            "13000000"
            "01"
            "4354"
            "8877665544332211"
            "00ffeeddccbbaa99");
}

TEST(TraceExt, DefaultFramesStayByteIdenticalToV2) {
  // A client that does not opt into tracing emits exactly the v2
  // bytes — the compatibility story for pre-v3 servers. (These pins
  // duplicate server_test's golden frames on purpose: this is the
  // contract that makes the ext safe to ship.)
  EXPECT_EQ(HexDump(EncodeFrame(EncodePingRequest())), "0100000001");
  EXPECT_EQ(HexDump(EncodeFrame(EncodeTopKRequest(5))), "050000000205000000");
  EXPECT_EQ(HexDump(EncodeFrame(
                EncodeEstimateRequest(Opcode::kEstimateFrequency, "ab"))),
            "0500000004" "0200" "6162");
  // And the pusher's opt-in defaults to OFF.
  EXPECT_FALSE(SketchPusherConfig{}.propagate_trace);
}

/// Runs SplitTraceExt over `payload` (a full request: opcode + body)
/// and returns (ok, had_ext, base_len).
struct SplitResult {
  bool ok = false;
  bool had_ext = false;
  size_t base_len = 0;
  TraceContextExt ext;
};
SplitResult Split(std::string_view payload) {
  SplitResult r;
  const auto opcode = static_cast<Opcode>(payload[0]);
  std::string_view body = payload.substr(1);
  std::string_view base = body;
  std::optional<TraceContextExt> ext;
  r.ok = SplitTraceExt(opcode, body, &base, &ext);
  r.had_ext = ext.has_value();
  if (ext.has_value()) r.ext = *ext;
  r.base_len = base.size();
  return r;
}

TEST(TraceExt, SplitIsExactPerOpcode) {
  const TraceContextExt ctx{0xdeadbeefcafef00dULL, 0x0123456789abcdefULL};
  std::vector<std::string> bases;
  bases.push_back(EncodePingRequest());
  bases.push_back(EncodeStatsRequest());
  bases.push_back(EncodeDumpTraceRequest());
  bases.push_back(EncodeTopKRequest(7));
  bases.push_back(EncodeEstimateRequest(Opcode::kEstimateFrequency, "key"));
  PushRequest push;
  push.node_id = 1;
  push.epoch_seq = 2;
  push.records = 10;
  push.payload = "sketchbytes";
  bases.push_back(EncodePushRequest(push));

  for (const std::string& base : bases) {
    // Without the ext: passes through, nothing split.
    SplitResult plain = Split(base);
    EXPECT_TRUE(plain.ok) << HexDump(base);
    EXPECT_FALSE(plain.had_ext) << HexDump(base);
    EXPECT_EQ(plain.base_len, base.size() - 1) << HexDump(base);

    // With the ext: split exactly, ids intact.
    std::string extended = base;
    AppendTraceExt(&extended, ctx);
    SplitResult split = Split(extended);
    EXPECT_TRUE(split.ok) << HexDump(extended);
    ASSERT_TRUE(split.had_ext) << HexDump(extended);
    EXPECT_EQ(split.base_len, base.size() - 1);
    EXPECT_EQ(split.ext.trace_id, ctx.trace_id);
    EXPECT_EQ(split.ext.span_id, ctx.span_id);

    // Exactly the ext's place but the wrong magic: the one rejected
    // shape (kErrMalformed at the dispatcher).
    std::string tampered = extended;
    tampered[base.size()] ^= 0xff;  // first magic byte
    EXPECT_FALSE(Split(tampered).ok) << HexDump(tampered);

    // A truncated ext is NOT the ext's place — it passes through for
    // the opcode handler's own typed length error.
    std::string truncated = extended.substr(0, extended.size() - 1);
    SplitResult passed = Split(truncated);
    EXPECT_TRUE(passed.ok) << HexDump(truncated);
    EXPECT_FALSE(passed.had_ext) << HexDump(truncated);
    EXPECT_EQ(passed.base_len, truncated.size() - 1);
  }
}

TEST(TraceExt, KeyBytesThatLookLikeTheMagicAreNeverMisSplit) {
  // A key whose tail is a byte-perfect fake extension: the explicit
  // key_len already covers those bytes, so no ext is detected — exact
  // split, not heuristic.
  std::string fake_ext;
  AppendTraceExt(&fake_ext, {0x1111111111111111ULL, 0x2222222222222222ULL});
  const std::string key = "k" + fake_ext;
  const std::string payload =
      EncodeEstimateRequest(Opcode::kEstimateFrequency, key);
  SplitResult r = Split(payload);
  EXPECT_TRUE(r.ok);
  EXPECT_FALSE(r.had_ext);
  EXPECT_EQ(r.base_len, payload.size() - 1);

  // The same key WITH a real extension appended: only the trailing
  // copy is split off; the in-key copy stays part of the base body.
  std::string extended = payload;
  AppendTraceExt(&extended, {0x3333333333333333ULL, 0x4444444444444444ULL});
  SplitResult split = Split(extended);
  EXPECT_TRUE(split.ok);
  ASSERT_TRUE(split.had_ext);
  EXPECT_EQ(split.ext.trace_id, 0x3333333333333333ULL);
  EXPECT_EQ(split.base_len, payload.size() - 1);
}

// --- Dispatcher-level compatibility ----------------------------------

TEST(TraceExt, ExtendedRequestsAnswerByteIdenticallyToPlainOnes) {
  Fixture fx;
  QueryDispatcher dispatcher(fx.hub, fx.codec, 0);
  const TraceContextExt ctx{0xaaaabbbbccccddddULL, 0x1111222233334444ULL};
  const std::vector<std::string> payloads = {
      EncodePingRequest(),
      EncodeStatsRequest(),
      EncodeTopKRequest(5),
      EncodeEstimateRequest(Opcode::kEstimateFrequency, "7"),
      EncodeEstimateRequest(Opcode::kEstimateSignificance, "3"),
  };
  for (const std::string& plain : payloads) {
    std::string extended = plain;
    AppendTraceExt(&extended, ctx);
    EXPECT_EQ(dispatcher.Handle(plain), dispatcher.Handle(extended))
        << HexDump(plain);
  }
}

TEST(TraceExt, WrongMagicInTheExtSlotIsTypedMalformed) {
  Fixture fx;
  QueryDispatcher dispatcher(fx.hub, fx.codec, 0);
  std::string payload = EncodePingRequest();
  AppendTraceExt(&payload, {1, 2});
  payload[1] ^= 0xff;  // corrupt the magic, keep the length
  const auto decoded =
      DecodeResponse(Opcode::kPing, dispatcher.Handle(payload));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->status, Status::kErrMalformed);
}

TEST(TraceExt, TamperedExtendedPayloadsAlwaysGetDecodableResponses) {
  // The totality sweep, ext edition: every truncation and every
  // single-byte flip of an ext-bearing request still yields a
  // decodable response — never a crash, never silence.
  Fixture fx;
  QueryDispatcher dispatcher(fx.hub, fx.codec, 0);
  std::vector<std::string> seeds;
  for (std::string payload :
       {EncodePingRequest(), EncodeTopKRequest(3),
        EncodeEstimateRequest(Opcode::kEstimateFrequency, "12"),
        EncodeStatsRequest(), EncodeDumpTraceRequest()}) {
    AppendTraceExt(&payload, {0x5454545454545454ULL, 0x4343434343434343ULL});
    seeds.push_back(payload);
  }
  // Same well-formedness rule as server_test's fuzz loop: a non-OK
  // status decodes as an error frame regardless of opcode; an OK
  // response must decode against the (necessarily valid) request
  // opcode — a truncation can land on a shorter VALID request.
  const auto well_formed = [&](const std::string& payload) {
    const std::string response = dispatcher.Handle(payload);
    if (response.empty()) return false;
    if (static_cast<uint8_t>(response[0]) != 0) {
      return DecodeResponse(Opcode::kPing, response).has_value();
    }
    if (payload.empty()) return false;
    const uint8_t op = static_cast<uint8_t>(payload[0]);
    if (op < 1 || op > 8) return false;
    return DecodeResponse(static_cast<Opcode>(op), response).has_value();
  };
  for (const std::string& seed : seeds) {
    for (size_t cut = 0; cut <= seed.size(); ++cut) {
      EXPECT_TRUE(well_formed(seed.substr(0, cut)))
          << "cut=" << cut << " " << HexDump(seed);
    }
    for (size_t at = 0; at < seed.size(); ++at) {
      std::string flipped = seed;
      flipped[at] ^= 0x41;
      EXPECT_TRUE(well_formed(flipped)) << "at=" << at << " " << HexDump(seed);
    }
  }
}

// --- DUMP_TRACE ------------------------------------------------------

TEST(DumpTrace, ResponseRoundTrips) {
  const std::string json = "{\"traceEvents\":[]}";
  const auto decoded =
      DecodeResponse(Opcode::kDumpTrace, EncodeTraceDumpResponse(json));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->status, Status::kOk);
  EXPECT_EQ(decoded->trace_json, json);

  // A truncated response payload is undecodable (server-bug sentinel,
  // same contract as every other response decoder).
  const std::string full = EncodeTraceDumpResponse(json);
  EXPECT_FALSE(
      DecodeResponse(Opcode::kDumpTrace, full.substr(0, full.size() - 3))
          .has_value());
}

TEST(DumpTrace, NoRecorderIsATypedRefusal) {
  Fixture fx;
  QueryDispatcher dispatcher(fx.hub, fx.codec, 0);
  ASSERT_EQ(tel::FlightRecorder::active(), nullptr);
  const auto decoded = DecodeResponse(Opcode::kDumpTrace,
                                      dispatcher.Handle(EncodeDumpTraceRequest()));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->status, Status::kErrBadRequest);
}

#ifdef LTC_TRACING

TEST(DumpTrace, WithARecorderAnswersBoundedJson) {
  Fixture fx;
  QueryDispatcher dispatcher(fx.hub, fx.codec, 0);
  FakeClock clock;
  tel::FlightRecorder recorder(&clock, 32);
  Installed active(&recorder);
  // Generate some server-side spans first.
  dispatcher.Handle(EncodePingRequest());
  dispatcher.Handle(EncodeTopKRequest(3));
  const auto decoded = DecodeResponse(Opcode::kDumpTrace,
                                      dispatcher.Handle(EncodeDumpTraceRequest()));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->status, Status::kOk);
  EXPECT_NE(decoded->trace_json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(decoded->trace_json.find("server.request"), std::string::npos);
  // The dump must fit the standard frame cap with room for the header.
  EXPECT_LE(decoded->trace_json.size(), kMaxFrameBytes - 64);
}

TEST(DumpTrace, RemoteContextParentsTheServerSpan) {
  Fixture fx;
  QueryDispatcher dispatcher(fx.hub, fx.codec, 0);
  FakeClock clock;
  tel::FlightRecorder recorder(&clock, 32);
  Installed active(&recorder);
  std::string payload = EncodePingRequest();
  const TraceContextExt ctx{0xfeedfacefeedfaceULL, 0xabadcafeabadcafeULL};
  AppendTraceExt(&payload, ctx);
  dispatcher.Handle(payload);
  const std::string json = recorder.DumpChromeJson();
  // The server.request span joined the caller's trace and parent.
  EXPECT_NE(json.find("\"trace_id\":\"0xfeedfacefeedface\""),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"parent_id\":\"0xabadcafeabadcafe\""),
            std::string::npos)
      << json;
}

#endif  // LTC_TRACING

}  // namespace
}  // namespace server
}  // namespace ltc
