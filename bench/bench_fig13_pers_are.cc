// Fig. 13 — ARE on finding persistent items (§V-G), α=0 β=1. Same
// configurations as Fig. 12, reporting ARE.

#include "bench_common.h"

namespace ltc {
namespace bench {

void Run() {
  const std::vector<size_t> memories = {25, 50, 100, 200, 300};

  const char* panels[] = {"(a) CAIDA", "(b) Network", "(c) Social"};
  auto datasets = LoadAllDatasets();
  for (size_t i = 0; i < datasets.size(); ++i) {
    auto factory = [&](size_t memory_bytes, size_t k) {
      return PersistentSuite(memory_bytes, k, datasets[i].stream,
                             /*include_pie=*/true);
    };
    PrintFigure(std::string("Fig 13") + panels[i] +
                    ": ARE vs memory, persistent items (k=100; PIE gets "
                    "T x memory)",
                SweepMemory(datasets[i], memories, factory, 100, 0.0, 1.0,
                            Metric::kAre));
  }

  auto network_factory = [&](size_t memory_bytes, size_t k) {
    return PersistentSuite(memory_bytes, k, datasets[1].stream,
                           /*include_pie=*/true);
  };
  PrintFigure("Fig 13(d): ARE vs k, persistent items (Network, 100KB)",
              SweepK(datasets[1], 100 * 1024, {100, 250, 500, 750, 1000},
                     network_factory, 0.0, 1.0, Metric::kAre));
}

}  // namespace bench
}  // namespace ltc

int main() { ltc::bench::Run(); }
