// Appendix ablation — the bucket-width choice (§V-C: "we have conducted
// experiments to compare the performance of different d ... we set d = 8
// by default"): LTC precision and ARE vs d ∈ {1, 2, 4, 8, 16, 32} on the
// Network dataset at 50 KB, significant items (α=1, β=1, k=100).

#include "bench_common.h"

namespace ltc {
namespace bench {

void Run() {
  Dataset network = LoadNetwork();
  constexpr size_t kMemory = 50 * 1024;
  constexpr size_t kK = 100;

  TextTable table({"d", "precision", "ARE"});
  for (uint32_t d : {1u, 2u, 4u, 8u, 16u, 32u}) {
    LtcConfig config;
    config.memory_bytes = kMemory;
    config.cells_per_bucket = d;
    LtcReporter reporter(config, network.stream.num_periods(),
                         network.stream.duration());
    RunResult result = RunReporter(reporter, network.stream, network.truth,
                                   kK, 1.0, 1.0);
    table.AddRow({std::to_string(d), FormatMetric(result.eval.precision),
                  FormatMetric(result.eval.are)});
  }
  PrintFigure(
      "Appendix: varying d, significant items (Network, 50KB, a=1 b=1, "
      "k=100)",
      table);
}

}  // namespace bench
}  // namespace ltc

int main() { ltc::bench::Run(); }
