// Deterministic stateful differential fuzzer for the LTC family.
//
// A seeded generator produces an operation trace (inserts with
// adversarial timing, point queries, top-k diffs, serialize round-trips);
// a runner replays the trace against a subject (Ltc, ShardedLtc or
// WindowedLtc) in lockstep with ExactSignificanceOracle and diffs every
// answer against the guarantees the configuration actually makes:
//
//  * InitPolicy::kOne            → frequency is one-sided (never above truth)
//  * kOne + Deviation Eliminator → persistency and significance one-sided
//                                  (Theorem IV.1)
//  * kOne, single-flag scheme    → persistency ≤ 2× truth after Finalize
//                                  (the §III-C deviation bound)
//  * every config                → reported significance ≡ α·f̂ + β·p̂,
//                                  top-k sorted and duplicate-free, only
//                                  items that truly appeared are reported,
//                                  never-inserted items answer 0, and a
//                                  serialize → deserialize round-trip is
//                                  behavior-identical (the restored table
//                                  REPLACES the subject mid-trace)
//
// Failures do not assert: the runner returns the failing op index and a
// diagnostic, RunDifferential then shrinks the trace ddmin-style and
// reports a replay command for tools/ltc_fuzz. In LTC_AUDIT builds the
// oracle is also attached to the subject, arming the after-insert hooks.
//
// Everything is reproducible from (options, seed): generation uses only
// ltc::Rng, whose sequence is stable across platforms.

#ifndef LTC_TESTING_TRACE_FUZZER_H_
#define LTC_TESTING_TRACE_FUZZER_H_

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/ltc.h"

namespace ltc {

/// Thrown by ThrowingAuditHandler. RunTrace installs the handler for the
/// duration of a run, so in LTC_AUDIT builds a hook violation surfaces as
/// a shrinkable FuzzFailure (with a replay seed) instead of a process
/// abort.
struct AuditViolation : std::runtime_error {
  using std::runtime_error::runtime_error;
};

[[noreturn]] void ThrowingAuditHandler(const std::string& message);

/// Which structure the trace drives.
enum class SubjectKind { kLtc, kSharded, kWindowed };

const char* SubjectName(SubjectKind kind);

/// One cell of the InitPolicy × PeriodMode × Deviation-Eliminator grid.
struct FuzzCombo {
  InitPolicy init_policy = InitPolicy::kOne;
  bool deviation_eliminator = true;
  PeriodMode period_mode = PeriodMode::kCountBased;

  /// e.g. "one_dev_count", "longtail_nodev_time".
  std::string Name() const;
};

/// All 12 combinations, in a fixed order (index = the --combo of
/// tools/ltc_fuzz). Combos that force time-based pacing for a subject
/// (WindowedLtc) are filtered by the caller.
std::vector<FuzzCombo> AllCombos();

struct FuzzOptions {
  uint64_t seed = 1;
  uint64_t num_ops = 10'000;
  SubjectKind subject = SubjectKind::kLtc;
  FuzzCombo combo;

  // Table shape: small enough that buckets fill and Case-3 replacement,
  // decrements and evictions all exercise; big enough to keep real top-k.
  size_t memory_bytes = 2 * 1024;
  uint32_t cells_per_bucket = 4;
  double alpha = 1.0;
  double beta = 1.0;
  uint64_t items_per_period = 512;  // count-based period length
  double period_seconds = 1.0;      // time-based period length
  uint32_t num_shards = 4;          // kSharded only
  uint32_t window_periods = 6;      // kWindowed only

  /// Item universe [1, universe]; queries also probe [universe+1,
  /// universe+64], which must always answer zero.
  uint64_t universe = 4'000;

  LtcConfig MakeConfig() const;
};

/// One generated operation. Inserts carry an ABSOLUTE timestamp (may
/// regress — both subject and oracle clamp), so removing ops while
/// shrinking never shifts the timing of the ops that remain.
struct TraceOp {
  enum Kind : uint8_t {
    kInsert,             // insert `item` at `time`
    kPointQuery,         // diff per-item estimates vs. the oracle
    kTopKDiff,           // diff a TopK / SnapshotTopK report
    kSerializeRoundTrip, // checkpoint, restore, swap the subject
    kMergeCheck          // MergeFrom identities on a finalized clone
                         // (no-op for WindowedLtc, which has no merge)
  };
  Kind kind = kInsert;
  ItemId item = 0;
  double time = 0.0;
};

struct FuzzFailure {
  size_t op_index = 0;        // index into the trace that was run
  size_t trace_size = 0;      // size of the (possibly shrunk) trace
  std::string message;        // what diverged, estimate vs. truth
  std::string replay_command; // exact tools/ltc_fuzz invocation
};

/// Deterministically generates the op trace for `options` (~90% inserts
/// with a hot/cold skewed item mix, timing that includes zero-elapsed
/// arrivals, exact period-boundary hits, multi-period gaps and backwards
/// timestamps; ~10% queries and round-trips).
std::vector<TraceOp> GenerateTrace(const FuzzOptions& options);

/// Replays `trace` against the subject + oracle; returns the first
/// divergence, or nullopt if the run (including the final Finalize-and-
/// diff pass) is clean.
std::optional<FuzzFailure> RunTrace(const FuzzOptions& options,
                                    const std::vector<TraceOp>& trace);

/// Generate → run → on failure, shrink the trace (ddmin-style chunk
/// removal, bounded) and return the failure of the smallest still-failing
/// trace, with a replayable command line.
std::optional<FuzzFailure> RunDifferential(const FuzzOptions& options);

}  // namespace ltc

#endif  // LTC_TESTING_TRACE_FUZZER_H_
