// Count sketch (Charikar, Chen & Farach-Colton, 2002): the third
// sketch-based frequency baseline from the paper's §II-A. Unlike CM/CU it
// gives an *unbiased* estimate (two-sided error) by adding each item with a
// random sign and reporting the median across rows.

#ifndef LTC_SKETCH_COUNT_SKETCH_H_
#define LTC_SKETCH_COUNT_SKETCH_H_

#include <cstdint>
#include <vector>

#include "stream/stream.h"

namespace ltc {

class CountSketch {
 public:
  /// \param memory_bytes  counter memory; width = bytes / (4·depth)
  /// \param depth         number of rows (odd is best for the median;
  ///                      the paper uses 3)
  CountSketch(size_t memory_bytes, uint32_t depth = 3, uint64_t seed = 0);

  void Insert(ItemId item, int32_t count = 1);

  /// Median-of-rows estimate; may be negative for never-seen items, so
  /// callers clamp at 0 when a frequency is required.
  int64_t Query(ItemId item) const;

  uint32_t depth() const { return depth_; }
  uint32_t width() const { return width_; }
  size_t MemoryBytes() const {
    return static_cast<size_t>(depth_) * width_ * sizeof(int32_t);
  }

  void Clear();

 private:
  uint32_t Cell(uint32_t row, ItemId item) const;
  int32_t Sign(uint32_t row, ItemId item) const;

  uint32_t depth_;
  uint32_t width_;
  uint64_t seed_;
  std::vector<int32_t> counters_;
};

}  // namespace ltc

#endif  // LTC_SKETCH_COUNT_SKETCH_H_
