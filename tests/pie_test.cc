// Unit tests for the Space-Time Bloom Filter and the PIE baseline.

#include <algorithm>
#include <set>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "persistent/pie.h"
#include "persistent/space_time_bloom_filter.h"

namespace ltc {
namespace {

TEST(Stbf, NoFalseNegativesWithinPeriod) {
  LtIdCode code;
  SpaceTimeBloomFilter stbf(4'096, 3, 0, &code, 1);
  std::vector<ItemId> items;
  Rng rng(1);
  for (int i = 0; i < 200; ++i) items.push_back(rng.Next() | 1);
  for (ItemId item : items) stbf.Insert(item);
  for (ItemId item : items) {
    EXPECT_TRUE(stbf.MayContain(item)) << "item " << item;
  }
}

TEST(Stbf, AbsentItemsUsuallyRejected) {
  LtIdCode code;
  SpaceTimeBloomFilter stbf(4'096, 3, 0, &code, 2);
  Rng rng(2);
  for (int i = 0; i < 200; ++i) stbf.Insert(rng.Next() | 1);
  int false_positives = 0;
  for (int i = 0; i < 1'000; ++i) {
    if (stbf.MayContain(rng.Next() | 1)) ++false_positives;
  }
  EXPECT_LT(false_positives, 20);
}

TEST(Stbf, RepeatInsertKeepsSingleton) {
  LtIdCode code;
  SpaceTimeBloomFilter stbf(256, 3, 0, &code, 3);
  stbf.Insert(42);
  stbf.Insert(42);  // same item twice: cells stay singletons
  int singletons = 0;
  for (const auto& cell : stbf.cells()) {
    if (cell.state == SpaceTimeBloomFilter::CellState::kSingleton) {
      ++singletons;
    }
    EXPECT_NE(cell.state, SpaceTimeBloomFilter::CellState::kCollision);
  }
  EXPECT_GE(singletons, 1);
  EXPECT_LE(singletons, 3);
}

TEST(Stbf, DifferentItemsCollideIntoDeadCells) {
  LtIdCode code;
  // 8 cells, 3 hashes, many items: collisions are certain.
  SpaceTimeBloomFilter stbf(8, 3, 0, &code, 4);
  Rng rng(4);
  for (int i = 0; i < 100; ++i) stbf.Insert(rng.Next() | 1);
  int collisions = 0;
  for (const auto& cell : stbf.cells()) {
    if (cell.state == SpaceTimeBloomFilter::CellState::kCollision) {
      ++collisions;
      // Dead cells carry no payload.
      EXPECT_EQ(cell.fingerprint, 0u);
      EXPECT_EQ(cell.symbol, 0u);
    }
  }
  EXPECT_GT(collisions, 0);
}

TEST(Stbf, PeriodSaltChangesPositions) {
  LtIdCode code;
  SpaceTimeBloomFilter p0(1'024, 3, 0, &code, 5);
  SpaceTimeBloomFilter p1(1'024, 3, 1, &code, 5);
  p0.Insert(123456789);
  p1.Insert(123456789);
  std::set<size_t> cells0, cells1;
  for (size_t i = 0; i < p0.cells().size(); ++i) {
    if (p0.cells()[i].state != SpaceTimeBloomFilter::CellState::kEmpty) {
      cells0.insert(i);
    }
    if (p1.cells()[i].state != SpaceTimeBloomFilter::CellState::kEmpty) {
      cells1.insert(i);
    }
  }
  EXPECT_NE(cells0, cells1);
}

TEST(Stbf, MemoryAccounting) {
  EXPECT_EQ(SpaceTimeBloomFilter::BytesPerCell(), 7u);
  EXPECT_EQ(SpaceTimeBloomFilter::CellsForMemory(7'000), 1'000u);
  EXPECT_EQ(SpaceTimeBloomFilter::CellsForMemory(1), 1u);
}

// ----------------------------------------------------------------- PIE

TEST(Pie, DecodesPersistentItemsWithAmpleMemory) {
  constexpr uint32_t kPeriods = 20;
  Pie pie(32 * 1024, kPeriods, 3, 1);

  // 10 persistent items in every period + noise items per period.
  std::vector<ItemId> persistent;
  Rng rng(10);
  for (int i = 0; i < 10; ++i) persistent.push_back(rng.Next() | 1);
  for (uint32_t p = 0; p < kPeriods; ++p) {
    for (ItemId item : persistent) pie.Insert(item, p);
    for (int noise = 0; noise < 50; ++noise) pie.Insert(rng.Next() | 1, p);
  }

  auto reports = pie.DecodeAll();
  std::unordered_map<ItemId, uint32_t> decoded;
  for (const auto& r : reports) decoded[r.item] = r.persistency;

  int recovered = 0;
  for (ItemId item : persistent) {
    if (decoded.count(item)) {
      ++recovered;
      EXPECT_GE(decoded[item], kPeriods - 1);
    }
  }
  EXPECT_GE(recovered, 9);  // nearly all persistent items decodable
}

TEST(Pie, TransientItemsRarelyDecoded) {
  constexpr uint32_t kPeriods = 50;
  Pie pie(8 * 1024, kPeriods, 3, 2);
  Rng rng(11);
  std::set<ItemId> transients;
  for (uint32_t p = 0; p < kPeriods; ++p) {
    for (int i = 0; i < 100; ++i) {
      ItemId item = rng.Next() | 1;  // fresh item: appears exactly once
      transients.insert(item);
      pie.Insert(item, p);
    }
  }
  auto reports = pie.DecodeAll();
  // One-shot items contribute at most 3 singleton symbols (one period),
  // below the K=4 decoding floor except for fingerprint-collision flukes.
  EXPECT_LT(reports.size(), transients.size() / 20 + 5);
}

TEST(Pie, TopKOrdersByPersistency) {
  constexpr uint32_t kPeriods = 30;
  Pie pie(32 * 1024, kPeriods, 3, 3);
  Rng rng(12);
  ItemId always = rng.Next() | 1;
  ItemId half = rng.Next() | 1;
  for (uint32_t p = 0; p < kPeriods; ++p) {
    pie.Insert(always, p);
    if (p % 2 == 0) pie.Insert(half, p);
  }
  auto top = pie.TopK(2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].item, always);
  EXPECT_EQ(top[1].item, half);
  EXPECT_GT(top[0].persistency, top[1].persistency);
}

TEST(Pie, EstimatePersistencyNeverUnderestimates) {
  constexpr uint32_t kPeriods = 10;
  Pie pie(16 * 1024, kPeriods, 3, 4);
  Rng rng(13);
  ItemId item = rng.Next() | 1;
  for (uint32_t p = 0; p < kPeriods; p += 2) pie.Insert(item, p);
  for (uint32_t p = 0; p < kPeriods; ++p) {
    for (int noise = 0; noise < 20; ++noise) pie.Insert(rng.Next() | 1, p);
  }
  // Bloom-style membership: false positives only -> estimate >= truth (5).
  EXPECT_GE(pie.EstimatePersistency(item), 5u);
}

TEST(Pie, StarvedMemoryDecodesLittle) {
  // The §V-C rationale for giving PIE T× memory: at tight per-period
  // budgets nearly every cell is a collision and nothing decodes.
  constexpr uint32_t kPeriods = 20;
  Pie pie(128, kPeriods, 3, 5);  // ~18 cells per period
  Rng rng(14);
  std::vector<ItemId> persistent;
  for (int i = 0; i < 20; ++i) persistent.push_back(rng.Next() | 1);
  for (uint32_t p = 0; p < kPeriods; ++p) {
    for (ItemId item : persistent) pie.Insert(item, p);
    for (int noise = 0; noise < 100; ++noise) pie.Insert(rng.Next() | 1, p);
  }
  EXPECT_LT(pie.DecodeAll().size(), 5u);
}

TEST(Pie, RaptorCodedPieDecodesPersistentItems) {
  // The published PIE uses Raptor codes; the kRaptor configuration runs
  // the same pipeline over the precoded ID.
  constexpr uint32_t kPeriods = 20;
  Pie pie(32 * 1024, kPeriods, 3, 7, IdCodeKind::kRaptor);
  Rng rng(15);
  std::vector<ItemId> persistent;
  for (int i = 0; i < 10; ++i) persistent.push_back(rng.Next() | 1);
  for (uint32_t p = 0; p < kPeriods; ++p) {
    for (ItemId item : persistent) pie.Insert(item, p);
    for (int noise = 0; noise < 50; ++noise) pie.Insert(rng.Next() | 1, p);
  }
  auto reports = pie.DecodeAll();
  std::set<ItemId> decoded;
  for (const auto& r : reports) decoded.insert(r.item);
  int recovered = 0;
  for (ItemId item : persistent) recovered += decoded.count(item);
  EXPECT_GE(recovered, 9);
}

TEST(Pie, UntouchedPeriodsAreHandled) {
  Pie pie(4'096, 10, 3, 6);
  pie.Insert(42, 0);
  pie.Insert(42, 9);  // periods 1..8 never touched
  EXPECT_EQ(pie.EstimatePersistency(42), 2u);
  auto reports = pie.DecodeAll();  // must not crash on null filters
  SUCCEED();
}

}  // namespace
}  // namespace ltc
