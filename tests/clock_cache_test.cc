// Unit tests for the classic CLOCK replacement cache substrate.

#include <vector>

#include <gtest/gtest.h>

#include "clockcache/clock_cache.h"
#include "common/rng.h"

namespace ltc {
namespace {

TEST(ClockCache, HitAndMissAccounting) {
  ClockCache cache(4);
  EXPECT_FALSE(cache.Access(1));  // miss
  EXPECT_TRUE(cache.Access(1));   // hit
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_DOUBLE_EQ(cache.HitRate(), 0.5);
}

TEST(ClockCache, FillsBeforeEvicting) {
  ClockCache cache(3);
  cache.Access(1);
  cache.Access(2);
  cache.Access(3);
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_TRUE(cache.Contains(1));
  EXPECT_TRUE(cache.Contains(2));
  EXPECT_TRUE(cache.Contains(3));
}

TEST(ClockCache, FifoEvictionWithoutReferences) {
  ClockCache cache(3);
  cache.Access(1);
  cache.Access(2);
  cache.Access(3);
  // No re-references: pure FIFO; 4 evicts 1, 5 evicts 2.
  cache.Access(4);
  EXPECT_FALSE(cache.Contains(1));
  cache.Access(5);
  EXPECT_FALSE(cache.Contains(2));
  EXPECT_TRUE(cache.Contains(3));
}

TEST(ClockCache, SecondChanceProtectsReferencedFrame) {
  ClockCache cache(3);
  cache.Access(1);
  cache.Access(2);
  cache.Access(3);
  cache.Access(1);  // set 1's reference bit
  cache.Access(4);  // hand at 1: second chance; evicts 2 instead
  EXPECT_TRUE(cache.Contains(1));
  EXPECT_FALSE(cache.Contains(2));
  EXPECT_TRUE(cache.Contains(3));
  EXPECT_TRUE(cache.Contains(4));
}

TEST(ClockCache, AllReferencedDegradesToFifoAfterOneSweep) {
  ClockCache cache(2);
  cache.Access(1);
  cache.Access(2);
  cache.Access(1);
  cache.Access(2);  // both referenced
  cache.Access(3);  // sweep clears both bits, then evicts frame 0 (key 1)
  EXPECT_FALSE(cache.Contains(1));
  EXPECT_TRUE(cache.Contains(2));
  EXPECT_TRUE(cache.Contains(3));
}

TEST(ClockCache, CapacityOne) {
  ClockCache cache(1);
  cache.Access(1);
  EXPECT_TRUE(cache.Contains(1));
  cache.Access(1);  // referenced
  cache.Access(2);  // must still evict (only frame)
  EXPECT_TRUE(cache.Contains(2));
  EXPECT_FALSE(cache.Contains(1));
}

TEST(ClockCache, LoopingScanBeatsNothingButStaysCorrect) {
  // Random workload sanity: size never exceeds capacity, every reported
  // hit is a real repeat, and hit rate on a skewed workload is decent.
  ClockCache cache(64);
  Rng rng(5);
  std::vector<bool> possible(1'001, false);
  uint64_t impossible_hits = 0;
  for (int i = 0; i < 50'000; ++i) {
    // 90% of accesses to 32 hot keys: CLOCK must capture most of them.
    uint64_t key = rng.Bernoulli(0.9) ? rng.Uniform(32) + 1
                                      : rng.Uniform(1'000) + 1;
    bool hit = cache.Access(key);
    if (hit && !possible[key]) ++impossible_hits;
    possible[key] = true;
    ASSERT_LE(cache.size(), 64u);
  }
  EXPECT_EQ(impossible_hits, 0u);
  EXPECT_GT(cache.HitRate(), 0.7);
}

TEST(ClockCache, HandAdvancesWithinBounds) {
  ClockCache cache(8);
  for (uint64_t i = 0; i < 100; ++i) {
    cache.Access(i);
    ASSERT_LT(cache.hand(), 8u);
  }
}

// ---------------- buffer-pool extensions: pins, dirty bits, eviction

TEST(ClockCache, PinnedFrameIsNeverEvicted) {
  ClockCache cache(2);
  cache.Access(1);
  cache.Access(2);
  ASSERT_TRUE(cache.Pin(1));
  // 1 is pinned: every later admission must victimize 2's slot.
  for (uint64_t key = 3; key < 10; ++key) {
    ClockCache::Evicted evicted;
    EXPECT_EQ(cache.AccessEx(key, &evicted), ClockCache::Admit::kAdmitted);
    EXPECT_TRUE(evicted.happened);
    EXPECT_NE(evicted.key, 1u);
    EXPECT_TRUE(cache.Contains(1));
  }
  EXPECT_TRUE(cache.Unpin(1));
  cache.Access(50);
  cache.Access(51);
  EXPECT_FALSE(cache.Contains(1));  // unpinned: evictable again
}

TEST(ClockCache, AllPinnedReportsNoFrame) {
  ClockCache cache(2);
  cache.Access(1);
  cache.Access(2);
  ASSERT_TRUE(cache.Pin(1));
  ASSERT_TRUE(cache.Pin(2));
  EXPECT_EQ(cache.pinned(), 2u);
  ClockCache::Evicted evicted;
  EXPECT_EQ(cache.AccessEx(3, &evicted), ClockCache::Admit::kNoFrame);
  EXPECT_FALSE(evicted.happened);
  EXPECT_FALSE(cache.Contains(3));
  EXPECT_EQ(cache.size(), 2u);
  // A hit on a pinned frame still works (and is still a hit).
  EXPECT_EQ(cache.AccessEx(1), ClockCache::Admit::kHit);
}

TEST(ClockCache, PinsAreCounted) {
  ClockCache cache(1);
  cache.Access(1);
  ASSERT_TRUE(cache.Pin(1));
  ASSERT_TRUE(cache.Pin(1));
  EXPECT_EQ(cache.pinned(), 1u);  // one frame, however many pins
  EXPECT_TRUE(cache.Unpin(1));
  EXPECT_TRUE(cache.IsPinned(1));  // one pin still outstanding
  EXPECT_EQ(cache.AccessEx(2), ClockCache::Admit::kNoFrame);
  EXPECT_TRUE(cache.Unpin(1));
  EXPECT_FALSE(cache.IsPinned(1));
  EXPECT_FALSE(cache.Unpin(1));  // no pins left to release
  EXPECT_EQ(cache.AccessEx(2), ClockCache::Admit::kAdmitted);
}

TEST(ClockCache, PinMissingKeyFails) {
  ClockCache cache(2);
  EXPECT_FALSE(cache.Pin(7));
  EXPECT_FALSE(cache.Unpin(7));
  EXPECT_FALSE(cache.MarkDirty(7));
  EXPECT_FALSE(cache.IsPinned(7));
  EXPECT_FALSE(cache.IsDirty(7));
}

TEST(ClockCache, EvictingDirtyFrameReportsItForWriteBack) {
  ClockCache cache(1);
  cache.Access(1);
  ASSERT_TRUE(cache.MarkDirty(1));
  EXPECT_TRUE(cache.IsDirty(1));
  ClockCache::Evicted evicted;
  EXPECT_EQ(cache.AccessEx(2, &evicted), ClockCache::Admit::kAdmitted);
  EXPECT_TRUE(evicted.happened);
  EXPECT_EQ(evicted.key, 1u);
  EXPECT_TRUE(evicted.dirty);  // the owner owes a write-back
  // The new frame starts clean.
  EXPECT_FALSE(cache.IsDirty(2));
}

TEST(ClockCache, ClearDirtyMakesEvictionClean) {
  ClockCache cache(1);
  cache.Access(1);
  ASSERT_TRUE(cache.MarkDirty(1));
  ASSERT_TRUE(cache.ClearDirty(1));
  ClockCache::Evicted evicted;
  cache.AccessEx(2, &evicted);
  EXPECT_TRUE(evicted.happened);
  EXPECT_FALSE(evicted.dirty);
}

TEST(ClockCache, EraseDropsUnpinnedRefusesPinned) {
  ClockCache cache(2);
  cache.Access(1);
  cache.Access(2);
  ASSERT_TRUE(cache.Pin(1));
  EXPECT_FALSE(cache.Erase(1));  // pinned: the owner still holds it
  EXPECT_TRUE(cache.Erase(2));
  EXPECT_FALSE(cache.Contains(2));
  EXPECT_FALSE(cache.Erase(2));  // already gone
  ASSERT_TRUE(cache.Unpin(1));
  EXPECT_TRUE(cache.Erase(1));
  EXPECT_EQ(cache.size(), 0u);
  // Freed slots admit again without eviction.
  ClockCache::Evicted evicted;
  EXPECT_EQ(cache.AccessEx(3, &evicted), ClockCache::Admit::kAdmitted);
  EXPECT_FALSE(evicted.happened);
}

TEST(ClockCache, PlainAccessSemanticsUnchangedByExtensions) {
  // The original second-chance behavior must be identical when no
  // frame is ever pinned or dirtied — AccessEx is Access.
  ClockCache cache(3);
  cache.Access(1);
  cache.Access(2);
  cache.Access(3);
  cache.Access(1);
  ClockCache::Evicted evicted;
  EXPECT_EQ(cache.AccessEx(4, &evicted), ClockCache::Admit::kAdmitted);
  EXPECT_TRUE(evicted.happened);
  EXPECT_EQ(evicted.key, 2u);  // 1 got its second chance
  EXPECT_FALSE(evicted.dirty);
}

}  // namespace
}  // namespace ltc
