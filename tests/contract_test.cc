// Contract tests: every SignificantReporter implementation, driven
// through the exact harness life cycle over a parameter grid, must obey
// the interface's rules — k-bounded sorted reports, non-negative
// estimates consistent with the report, unique stable names. Plus
// serialization canonicality for the checkpointable types.

#include <memory>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/serial.h"
#include "metrics/evaluate.h"
#include "metrics/ground_truth.h"
#include "stream/generators.h"
#include "topk/reporters.h"

namespace ltc {
namespace {

struct ContractParam {
  const char* reporter;
  size_t memory_kb;
};

std::string ParamName(const ::testing::TestParamInfo<ContractParam>& info) {
  std::string name = info.param.reporter;
  for (char& c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return name + "_" + std::to_string(info.param.memory_kb) + "KB";
}

std::unique_ptr<SignificantReporter> MakeReporter(const std::string& kind,
                                                  size_t memory,
                                                  const Stream& stream,
                                                  size_t k) {
  if (kind == "LTC") {
    LtcConfig config;
    config.memory_bytes = memory;
    return std::make_unique<LtcReporter>(config, stream.num_periods(),
                                         stream.duration());
  }
  if (kind == "SS") return std::make_unique<SpaceSavingReporter>(memory);
  if (kind == "LC") return std::make_unique<LossyCountingReporter>(memory);
  if (kind == "MG") return std::make_unique<MisraGriesReporter>(memory);
  if (kind == "CM") {
    return std::make_unique<SketchHeapFrequentReporter>(SketchKind::kCountMin,
                                                        memory, k);
  }
  if (kind == "CU") {
    return std::make_unique<SketchHeapFrequentReporter>(SketchKind::kCu,
                                                        memory, k);
  }
  if (kind == "Count") {
    return std::make_unique<SketchHeapFrequentReporter>(SketchKind::kCount,
                                                        memory, k);
  }
  if (kind == "BF+CM") {
    return std::make_unique<BfSketchPersistentReporter>(
        SketchKind::kCountMin, memory, k);
  }
  if (kind == "BF+CU") {
    return std::make_unique<BfSketchPersistentReporter>(SketchKind::kCu,
                                                        memory, k);
  }
  if (kind == "BF+Count") {
    return std::make_unique<BfSketchPersistentReporter>(SketchKind::kCount,
                                                        memory, k);
  }
  if (kind == "BF+SS") {
    return std::make_unique<BfSpaceSavingPersistentReporter>(memory);
  }
  if (kind == "PIE") {
    return std::make_unique<PieReporter>(memory, 20);
  }
  if (kind == "CM+CM") {
    return std::make_unique<CombinedSignificantReporter>(
        SketchKind::kCountMin, memory, k, 1.0, 1.0);
  }
  if (kind == "CU+CU") {
    return std::make_unique<CombinedSignificantReporter>(SketchKind::kCu,
                                                         memory, k, 1.0, 1.0);
  }
  if (kind == "Count+Count") {
    return std::make_unique<CombinedSignificantReporter>(SketchKind::kCount,
                                                         memory, k, 1.0, 1.0);
  }
  ADD_FAILURE() << "unknown reporter kind " << kind;
  return nullptr;
}

class ReporterContractTest : public ::testing::TestWithParam<ContractParam> {
};

TEST_P(ReporterContractTest, FullLifeCycleObeysTheInterface) {
  const auto& [kind, memory_kb] = GetParam();
  constexpr size_t kK = 25;
  Stream stream = MakeZipfStream(20'000, 2'000, 1.1, 20, 4242);

  auto reporter = MakeReporter(kind, memory_kb * 1024, stream, kK);
  ASSERT_NE(reporter, nullptr);
  EXPECT_EQ(reporter->name(), kind);

  for (const Record& r : stream.records()) {
    reporter->Insert(r.item, r.time, stream.PeriodOf(r.time));
  }
  reporter->Finish();

  auto top = reporter->TopK(kK);
  EXPECT_LE(top.size(), kK);

  std::set<ItemId> seen;
  for (size_t i = 0; i < top.size(); ++i) {
    // Sorted, non-negative, no duplicate items, no reserved ID.
    if (i > 0) {
      ASSERT_GE(top[i - 1].estimate, top[i].estimate);
    }
    ASSERT_GE(top[i].estimate, 0.0);
    ASSERT_NE(top[i].item, 0u);
    ASSERT_TRUE(seen.insert(top[i].item).second)
        << "duplicate item " << top[i].item;
    // Point estimate of a reported item is positive and consistent.
    ASSERT_GE(reporter->Estimate(top[i].item), 0.0);
  }

  // TopK(1) is a prefix of TopK(k).
  auto top1 = reporter->TopK(1);
  if (!top.empty()) {
    ASSERT_EQ(top1.size(), 1u);
    EXPECT_EQ(top1[0].item, top[0].item);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllReporters, ReporterContractTest,
    ::testing::Values(ContractParam{"LTC", 8}, ContractParam{"LTC", 64},
                      ContractParam{"SS", 8}, ContractParam{"LC", 8},
                      ContractParam{"MG", 8}, ContractParam{"CM", 8},
                      ContractParam{"CU", 8}, ContractParam{"Count", 8},
                      ContractParam{"BF+CM", 16}, ContractParam{"BF+CU", 16},
                      ContractParam{"BF+Count", 16},
                      ContractParam{"BF+SS", 16}, ContractParam{"PIE", 16},
                      ContractParam{"CM+CM", 16}, ContractParam{"CU+CU", 16},
                      ContractParam{"Count+Count", 16}),
    ParamName);

// Serialization canonicality: serialize → deserialize → serialize gives
// byte-identical output (no hidden state lost or invented).
TEST(SerializationCanonical, LtcRoundTripIsByteStable) {
  LtcConfig config;
  config.memory_bytes = 4 * 1024;
  config.items_per_period = 500;
  Ltc table(config);
  Stream stream = MakeZipfStream(10'000, 1'000, 1.0, 10, 9);
  for (const Record& r : stream.records()) table.Insert(r.item);

  BinaryWriter first;
  table.Serialize(first);
  BinaryReader reader(first.data());
  auto restored = Ltc::Deserialize(reader);
  ASSERT_TRUE(restored.has_value());
  BinaryWriter second;
  restored->Serialize(second);
  EXPECT_EQ(first.data(), second.data());
}

TEST(SerializationCanonical, SketchesAreByteStable) {
  CuSketch cu(2 * 1024, 3, 5);
  BloomFilter bf(1 << 10, 3, 5);
  for (ItemId i = 1; i <= 500; ++i) {
    cu.Insert(i % 97 + 1);
    bf.Add(i);
  }

  BinaryWriter cu1, cu2, bf1, bf2;
  cu.Serialize(cu1);
  BinaryReader cu_reader(cu1.data());
  auto cu_restored = CounterMatrixSketch::Deserialize(cu_reader);
  ASSERT_NE(cu_restored, nullptr);
  cu_restored->Serialize(cu2);
  EXPECT_EQ(cu1.data(), cu2.data());

  bf.Serialize(bf1);
  BinaryReader bf_reader(bf1.data());
  auto bf_restored = BloomFilter::Deserialize(bf_reader);
  ASSERT_TRUE(bf_restored.has_value());
  bf_restored->Serialize(bf2);
  EXPECT_EQ(bf1.data(), bf2.data());
}

}  // namespace
}  // namespace ltc
