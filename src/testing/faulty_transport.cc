#include "testing/faulty_transport.h"

namespace ltc {

FaultyTransport::FaultyTransport(server::PushTransport* inner,
                                 const FaultyTransportConfig& config,
                                 Clock* clock)
    : inner_(inner),
      config_(config),
      clock_(clock != nullptr ? clock : &SystemClock()),
      rng_(config.seed) {}

void FaultyTransport::Arm(TransportFault kind, uint64_t count) {
  std::lock_guard<std::mutex> lock(mutex_);
  armed_[static_cast<size_t>(kind)] += count;
}

uint64_t FaultyTransport::faults_injected(TransportFault kind) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return injected_[static_cast<size_t>(kind)];
}

uint64_t FaultyTransport::total_faults_injected() const {
  std::lock_guard<std::mutex> lock(mutex_);
  uint64_t total = 0;
  for (uint64_t n : injected_) total += n;
  return total;
}

bool FaultyTransport::FireLocked(TransportFault kind, double probability) {
  const size_t i = static_cast<size_t>(kind);
  if (armed_[i] > 0) {
    --armed_[i];
    ++injected_[i];
    return true;
  }
  if (probability > 0.0 && rng_.Bernoulli(probability)) {
    ++injected_[i];
    return true;
  }
  return false;
}

void FaultyTransport::MaybeDelay() {
  uint64_t delay = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (FireLocked(TransportFault::kDelay, config_.delay_probability)) {
      delay = config_.delay_usec;
    }
  }
  // Sleep outside the lock: the chaos thread must stay free to Arm.
  if (delay > 0) clock_->SleepMicros(delay);
}

bool FaultyTransport::Connect(const std::string& host, uint16_t port,
                              uint64_t deadline_usec) {
  MaybeDelay();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (FireLocked(TransportFault::kRefuseConnect,
                   config_.refuse_probability)) {
      return false;
    }
  }
  return inner_->Connect(host, port, deadline_usec);
}

bool FaultyTransport::Send(std::string_view bytes, uint64_t deadline_usec) {
  MaybeDelay();
  enum class Mode { kClean, kDrop, kShort, kDropAck };
  Mode mode = Mode::kClean;
  size_t short_len = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (FireLocked(TransportFault::kDropSend, config_.drop_send_probability)) {
      mode = Mode::kDrop;
    } else if (FireLocked(TransportFault::kShortWrite,
                          config_.short_write_probability)) {
      mode = Mode::kShort;
      // A strict prefix, possibly zero bytes — may tear mid-length-
      // prefix, mid-opcode, or mid-payload.
      short_len = bytes.empty() ? 0 : rng_.Uniform(bytes.size());
    } else if (FireLocked(TransportFault::kDropAck,
                          config_.drop_ack_probability)) {
      mode = Mode::kDropAck;
    }
  }
  switch (mode) {
    case Mode::kDrop:
      inner_->Close();
      return false;
    case Mode::kShort:
      if (short_len > 0) {
        (void)inner_->Send(bytes.substr(0, short_len), deadline_usec);
      }
      inner_->Close();
      return false;
    case Mode::kDropAck: {
      // The frame goes out whole; only the ack will be eaten.
      const bool sent = inner_->Send(bytes, deadline_usec);
      if (sent) {
        std::lock_guard<std::mutex> lock(mutex_);
        drop_next_recv_ = true;
      }
      return sent;
    }
    case Mode::kClean:
      break;
  }
  return inner_->Send(bytes, deadline_usec);
}

bool FaultyTransport::Recv(std::string* out, size_t max_bytes,
                           uint64_t deadline_usec) {
  MaybeDelay();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (drop_next_recv_) {
      drop_next_recv_ = false;
      return false;
    }
  }
  return inner_->Recv(out, max_bytes, deadline_usec);
}

void FaultyTransport::Close() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    drop_next_recv_ = false;
  }
  inner_->Close();
}

}  // namespace ltc
