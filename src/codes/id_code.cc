#include "codes/id_code.h"

namespace ltc {

std::unique_ptr<IdCode> MakeIdCode(IdCodeKind kind) {
  switch (kind) {
    case IdCodeKind::kLt:
      return std::make_unique<LtIdCode>();
    case IdCodeKind::kRaptor:
      return std::make_unique<RaptorIdCode>();
  }
  return nullptr;
}

}  // namespace ltc
