// Quickstart: track the top-k significant items of a stream in ~30 lines.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "core/ltc.h"
#include "stream/generators.h"

int main() {
  // A synthetic 200k-record stream over 100 periods, long-tail frequencies,
  // with a mix of stable / bursty / windowed items.
  ltc::WorkloadConfig workload;
  workload.num_records = 200'000;
  workload.num_distinct = 20'000;
  workload.num_periods = 100;
  workload.seed = 7;
  ltc::Stream stream = ltc::GenerateWorkload(workload);

  // LTC with a 64 KB budget. Significance = 1·frequency + 10·persistency:
  // an item seen in many periods outranks a one-burst item of equal count.
  ltc::LtcConfig config;
  config.memory_bytes = 64 * 1024;
  config.alpha = 1.0;
  config.beta = 10.0;
  config.period_mode = ltc::PeriodMode::kTimeBased;
  config.period_seconds = stream.duration() / stream.num_periods();
  ltc::Ltc table(config);

  // Feed the stream: one call per record, O(d) per insert.
  for (const ltc::Record& record : stream.records()) {
    table.Insert(record.item, record.time);
  }
  table.Finalize();  // credit the pending period flags

  // Report.
  std::printf("%-20s %10s %12s %14s\n", "item", "frequency", "persistency",
              "significance");
  for (const auto& report : table.TopK(10)) {
    std::printf("%-20llu %10llu %12llu %14.1f\n",
                static_cast<unsigned long long>(report.item),
                static_cast<unsigned long long>(report.frequency),
                static_cast<unsigned long long>(report.persistency),
                report.significance);
  }

  // Point queries work too.
  auto top = table.TopK(1);
  if (!top.empty()) {
    std::printf("\nsignificance of the #1 item via point query: %.1f\n",
                table.QuerySignificance(top[0].item));
  }
  return 0;
}
