// Crash recovery for the paged sketch store (docs/DURABILITY.md
// "Paged store, WAL, and incremental checkpoints").
//
// Redo-only, in the minisql recovery-manager shape: replay the WAL
// over the newest page images. The walk:
//
//   1. Scan the store directory; decode every page file's frame header
//      (a corrupt file counts as LSN 0, so any logged delta heals it).
//   2. Read wal.log and parse records front to back, truncating at the
//      first bad frame — a torn tail is a clean end-of-log, exactly
//      what a crash mid-append leaves behind.
//   3. For each record's page deltas (records are whole-Put atomic):
//      apply the delta when record LSN > the page file's LSN, skip it
//      as stale otherwise. Applications go through AtomicWriteFile, so
//      a crash *during replay* just replays again on the next open.
//   4. Only after every application is durable, delete wal.log and
//      fsync the directory. A crash between 3 and 4 re-applies
//      already-applied records; the LSN test makes that a no-op.
//
// Run() is idempotent: any prefix of it, killed at any operation, can
// be re-run to the same final state (tests/store_crash_test.cc sweeps
// exactly this).

#ifndef LTC_STORE_RECOVERY_H_
#define LTC_STORE_RECOVERY_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "snapshot/fs.h"
#include "store/disk_manager.h"

namespace ltc {
namespace store {

struct RecoveryReport {
  bool wal_found = false;
  bool torn_tail = false;      // trailing garbage was truncated
  uint64_t wal_bytes = 0;      // log size before truncation
  uint64_t records = 0;        // intact records replayed
  uint64_t deltas_applied = 0; // page images rewritten from the log
  uint64_t deltas_stale = 0;   // deltas already reflected on disk
  uint64_t corrupt_pages = 0;  // page files that failed frame checks
  uint64_t max_lsn = 0;        // highest LSN on disk or in the log
  /// Pages per tenant after replay (page-id-contiguity NOT yet
  /// checked; SketchStore::Open validates geometry).
  std::map<uint64_t, std::vector<uint32_t>> tenant_pages;
};

class RecoveryManager {
 public:
  /// `disk` must outlive this manager.
  explicit RecoveryManager(DiskManager& disk) : disk_(disk) {}

  /// Replays the WAL over the page files (see file comment). False +
  /// `error` only on I/O failure — torn tails and stale records are
  /// normal outcomes, reported through `report`.
  bool Run(RecoveryReport* report, std::string* error);

 private:
  DiskManager& disk_;
};

}  // namespace store
}  // namespace ltc

#endif  // LTC_STORE_RECOVERY_H_
