// Ablation (DESIGN.md §5.5) — CLOCK pacing mode. With bursty arrival
// rates, count-based pacing (step m/n per arrival) defines periods by
// arrival count, which drifts from the time-defined periods the task is
// scored on; the time-based step (x−y)/t·m tracks them exactly (§III-B
// "when the period is defined by time"). Persistent items (α=0, β=1),
// Network dataset (bursty by construction), k=100.

#include <chrono>

#include "bench_common.h"

namespace ltc {
namespace bench {
namespace {

constexpr size_t kK = 100;

RunResult RunMode(const Dataset& data, size_t memory_bytes, PeriodMode mode) {
  LtcConfig config;
  config.memory_bytes = memory_bytes;
  config.alpha = 0.0;
  config.beta = 1.0;
  config.period_mode = mode;
  config.items_per_period =
      data.stream.size() / data.stream.num_periods();
  config.period_seconds =
      data.stream.duration() / data.stream.num_periods();
  // Bypass LtcReporter (which forces time pacing): drive Ltc directly.
  Ltc table(config);
  auto start = std::chrono::steady_clock::now();
  for (const Record& r : data.stream.records()) table.Insert(r.item, r.time);
  auto end = std::chrono::steady_clock::now();
  table.Finalize();

  std::vector<TopKEntry> reported;
  for (const auto& r : table.TopK(kK)) {
    reported.push_back({r.item, r.significance});
  }
  RunResult result;
  result.eval = Evaluate(reported, data.truth, kK, 0.0, 1.0);
  double seconds = std::chrono::duration<double>(end - start).count();
  if (seconds > 0) {
    result.insert_mops = static_cast<double>(data.stream.size()) / seconds / 1e6;
  }
  return result;
}

}  // namespace

void Run() {
  Dataset network = LoadNetwork();
  TextTable table({"memoryKB", "time_prec", "count_prec", "time_ARE",
                   "count_ARE"});
  for (size_t kb : {10, 25, 50, 100}) {
    RunResult by_time = RunMode(network, kb * 1024, PeriodMode::kTimeBased);
    RunResult by_count =
        RunMode(network, kb * 1024, PeriodMode::kCountBased);
    table.AddRow({std::to_string(kb),
                  FormatMetric(by_time.eval.precision),
                  FormatMetric(by_count.eval.precision),
                  FormatMetric(by_time.eval.are),
                  FormatMetric(by_count.eval.are)});
  }
  PrintFigure(
      "Ablation: CLOCK pacing mode on bursty arrivals, persistent items "
      "(Network, k=100)",
      table);
}

}  // namespace bench
}  // namespace ltc

int main() { ltc::bench::Run(); }
