// ltc_metrics_dump — pretty-prints a Prometheus text exposition (the
// file ltc_cli --metrics-out writes) as a compact human-readable
// summary: one block per family, histograms folded into
// count/sum/avg/max-bucket instead of their cumulative bucket series.
//
//   usage: ltc_metrics_dump [FILE | -]      (default: stdin)

#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

namespace {

struct Sample {
  std::string labels;  // "{shard=\"0\"}" or ""
  std::string value;
};

struct Family {
  std::string type;
  std::string help;
  std::vector<Sample> samples;  // counter/gauge samples
  // Histogram pieces keyed by the le-stripped label set.
  std::map<std::string, std::string> hist_count;
  std::map<std::string, std::string> hist_sum;
  std::map<std::string, std::string> hist_max_bucket;  // largest finite le
};

/// Splits "name{labels} value" / "name value"; returns false on junk.
bool SplitSample(const std::string& line, std::string* name,
                 std::string* labels, std::string* value) {
  const size_t brace = line.find('{');
  const size_t space = line.find(' ');
  if (space == std::string::npos) return false;
  if (brace != std::string::npos && brace < space) {
    const size_t close = line.find('}', brace);
    if (close == std::string::npos || close + 1 >= line.size()) return false;
    *name = line.substr(0, brace);
    *labels = line.substr(brace, close - brace + 1);
    *value = line.substr(close + 2);
  } else {
    *name = line.substr(0, space);
    labels->clear();
    *value = line.substr(space + 1);
  }
  return !name->empty() && !value->empty();
}

/// Removes one `le="..."` pair (and its separating comma) from a label
/// string, so every piece of one histogram series shares a key.
std::string StripLe(const std::string& labels) {
  const size_t le = labels.find("le=\"");
  if (le == std::string::npos) return labels;
  size_t end = labels.find('"', le + 4);
  if (end == std::string::npos) return labels;
  ++end;  // past the closing quote
  size_t begin = le;
  if (begin > 0 && labels[begin - 1] == ',') {
    --begin;  // {a="1",le="2"} -> {a="1"}
  } else if (end < labels.size() && labels[end] == ',') {
    ++end;  // {le="2",a="1"} -> {a="1"}
  }
  std::string out = labels.substr(0, begin) + labels.substr(end);
  return out == "{}" ? "" : out;
}

/// Ends with `suffix`? Then strip it into `stem`.
bool ChopSuffix(const std::string& name, const char* suffix,
                std::string* stem) {
  const std::string s = suffix;
  if (name.size() <= s.size() ||
      name.compare(name.size() - s.size(), s.size(), s) != 0) {
    return false;
  }
  *stem = name.substr(0, name.size() - s.size());
  return true;
}

int DumpStream(std::istream& in) {
  // Families in first-seen order.
  std::vector<std::string> order;
  std::map<std::string, Family> families;
  auto family_of = [&](const std::string& name) -> Family& {
    if (families.find(name) == families.end()) order.push_back(name);
    return families[name];
  };

  std::string line;
  size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    if (line[0] == '#') {
      std::istringstream meta(line);
      std::string hash, kind, name;
      meta >> hash >> kind >> name;
      std::string rest;
      std::getline(meta, rest);
      if (!rest.empty() && rest[0] == ' ') rest.erase(0, 1);
      if (kind == "HELP") {
        family_of(name).help = rest;
      } else if (kind == "TYPE") {
        family_of(name).type = rest;
      }
      continue;
    }
    std::string name, labels, value;
    if (!SplitSample(line, &name, &labels, &value)) {
      std::fprintf(stderr, "ltc_metrics_dump: line %zu unparseable: %s\n",
                   lineno, line.c_str());
      return 1;
    }
    std::string stem;
    if (ChopSuffix(name, "_bucket", &stem) &&
        families.find(stem) != families.end()) {
      Family& family = families[stem];
      const std::string key = StripLe(labels);
      family.hist_count[key];  // ensure the series exists
      if (labels.find("le=\"+Inf\"") == std::string::npos) {
        family.hist_max_bucket[key] = labels;  // last finite bucket wins
      }
    } else if (ChopSuffix(name, "_sum", &stem) &&
               families.find(stem) != families.end()) {
      families[stem].hist_sum[labels] = value;
    } else if (ChopSuffix(name, "_count", &stem) &&
               families.find(stem) != families.end()) {
      families[stem].hist_count[labels] = value;
    } else {
      family_of(name).samples.push_back({labels, value});
    }
  }

  for (const std::string& name : order) {
    const Family& family = families[name];
    std::printf("%s (%s)%s%s\n", name.c_str(),
                family.type.empty() ? "untyped" : family.type.c_str(),
                family.help.empty() ? "" : " — ",
                family.help.c_str());
    if (family.type == "histogram") {
      for (const auto& [labels, count] : family.hist_count) {
        const auto sum = family.hist_sum.find(labels);
        const auto max_bucket = family.hist_max_bucket.find(labels);
        double avg = 0.0;
        const double n = count.empty() ? 0.0 : std::stod(count);
        if (n > 0 && sum != family.hist_sum.end()) {
          avg = std::stod(sum->second) / n;
        }
        std::printf("  %-28s count=%s sum=%s avg=%.1f%s%s\n",
                    labels.empty() ? "(no labels)" : labels.c_str(),
                    count.c_str(),
                    sum != family.hist_sum.end() ? sum->second.c_str() : "?",
                    avg,
                    max_bucket != family.hist_max_bucket.end() ? " max "
                                                               : "",
                    max_bucket != family.hist_max_bucket.end()
                        ? max_bucket->second.c_str()
                        : "");
      }
    } else {
      for (const Sample& sample : family.samples) {
        std::printf("  %-28s %s\n",
                    sample.labels.empty() ? "(no labels)"
                                          : sample.labels.c_str(),
                    sample.value.c_str());
      }
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 2) {
    std::fprintf(stderr, "usage: ltc_metrics_dump [FILE | -]\n");
    return 2;
  }
  if (argc == 2 && std::string(argv[1]) != "-") {
    std::ifstream file(argv[1]);
    if (!file) {
      std::fprintf(stderr, "ltc_metrics_dump: cannot open '%s'\n", argv[1]);
      return 1;
    }
    return DumpStream(file);
  }
  return DumpStream(std::cin);
}
