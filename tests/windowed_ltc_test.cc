// Tests for the jumping-window LTC extension.

#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/windowed_ltc.h"

namespace ltc {
namespace {

LtcConfig WindowConfig(size_t memory = 8 * 1024) {
  LtcConfig config;
  config.memory_bytes = memory;
  config.period_mode = PeriodMode::kTimeBased;
  config.period_seconds = 1.0;
  return config;
}

TEST(WindowedLtc, GeometryAndBudget) {
  WindowedLtc window(WindowConfig(16 * 1024), 10);
  EXPECT_EQ(window.window_periods(), 10u);
  EXPECT_EQ(window.pane_periods(), 5u);
  EXPECT_LE(window.MemoryBytes(), 16u * 1024);
}

TEST(WindowedLtc, CountsWithinTheActiveWindow) {
  WindowedLtc window(WindowConfig(), 4);  // panes of 2 periods
  // Item 7 once per period in periods 0..3.
  for (int p = 0; p < 4; ++p) window.Insert(7, p + 0.5);
  auto top = window.TopK(1);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].item, 7u);
  // Coverage: previous pane (periods 0-1) + active (2-3) -> f=4, p=4.
  EXPECT_EQ(top[0].frequency, 4u);
  EXPECT_EQ(top[0].persistency, 4u);
  EXPECT_EQ(window.WindowStartPeriod(), 0u);
}

TEST(WindowedLtc, OldHistoryExpires) {
  WindowedLtc window(WindowConfig(), 4);  // panes of 2 periods
  // A storm of item 9 confined to periods 0-1 (pane 0).
  for (int i = 0; i < 1'000; ++i) {
    window.Insert(9, 0.001 * i);  // all inside period 0-1
  }
  // Quiet item 7 afterwards, periods 2..7 (panes 1..3).
  for (int p = 2; p < 8; ++p) window.Insert(7, p + 0.5);

  // By period 6-7 (pane 3), pane 0's storm is gone entirely.
  EXPECT_EQ(window.QuerySignificance(9), 0.0);
  EXPECT_GT(window.QuerySignificance(7), 0.0);
  auto top = window.TopK(5);
  for (const auto& report : top) EXPECT_NE(report.item, 9u);
  EXPECT_GE(window.WindowStartPeriod(), 4u);
}

TEST(WindowedLtc, SkippedPanesClearEverything) {
  WindowedLtc window(WindowConfig(), 4);
  window.Insert(5, 0.5);
  // Next arrival far in the future: several empty panes in between.
  window.Insert(6, 100.5);
  EXPECT_EQ(window.QuerySignificance(5), 0.0);
  EXPECT_GT(window.QuerySignificance(6), 0.0);
}

TEST(WindowedLtc, QueriesAreNonDestructive) {
  WindowedLtc window(WindowConfig(), 6);
  window.Insert(1, 0.5);
  window.Insert(1, 1.5);
  double first = window.QuerySignificance(1);
  double second = window.QuerySignificance(1);
  EXPECT_EQ(first, second);
  auto a = window.TopK(3);
  auto b = window.TopK(3);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].significance, b[i].significance);
  }
  // And inserts still work afterwards.
  window.Insert(1, 2.5);
  EXPECT_GT(window.QuerySignificance(1), first);
}

TEST(WindowedLtc, PaneTransitionAddsFieldsExactly) {
  WindowedLtc window(WindowConfig(), 4);  // panes of 2 periods
  // Item 3: twice in period 1 (pane 0) and once in period 2 (pane 1).
  window.Insert(3, 1.2);
  window.Insert(3, 1.7);
  window.Insert(3, 2.5);
  auto top = window.TopK(1);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].frequency, 3u);
  EXPECT_EQ(top[0].persistency, 2u);  // periods 1 and 2
}

TEST(WindowedLtc, TracksRecentHeavyItemsUnderChurn) {
  WindowedLtc window(WindowConfig(16 * 1024), 10);
  Rng rng(42);
  // Phase 1 (periods 0..19): item A heavy; phase 2 (20..39): item B.
  for (int p = 0; p < 40; ++p) {
    ItemId heavy = p < 20 ? 111 : 222;
    for (int i = 0; i < 50; ++i) {
      window.Insert(heavy, p + 0.01 * i);
      window.Insert(rng.Uniform(5'000) + 1, p + 0.01 * i + 0.005);
    }
  }
  // End of phase 2: B dominates the window; A has fully expired.
  auto top = window.TopK(1);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].item, 222u);
  EXPECT_EQ(window.QuerySignificance(111), 0.0);
}

}  // namespace
}  // namespace ltc
