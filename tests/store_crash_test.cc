// The fault-injected proof for the paged sketch store (ISSUE 10 (d)):
// a deterministic kill at EVERY mutating filesystem operation — WAL
// appends, page write-backs, budget-pressure evictions, checkpoint
// truncation, and WAL replay itself — after which reopening the store
// must recover every tenant's sketch bit-identical to the sequential
// oracle: the last acked Put, or the in-flight Put for the one tenant
// whose update the crash interrupted. Never a mix, never a loss.

#include <filesystem>
#include <map>
#include <string>

#include <gtest/gtest.h>

#include "common/serial.h"
#include "core/ltc.h"
#include "snapshot/failpoint_fs.h"
#include "snapshot/fs.h"
#include "store/sketch_store.h"

namespace ltc {
namespace store {
namespace {

// Four cells in one bucket: 5 pages at page_bytes=64 (header + one
// page per lane), so a 4-frame budget forces evictions mid-Put.
LtcConfig TinyConfig() {
  LtcConfig config;
  config.memory_bytes = LtcConfig::BytesPerCell() * 4;
  config.cells_per_bucket = 4;
  config.items_per_period = 50;
  return config;
}

SketchStoreOptions TinyOptions() {
  SketchStoreOptions options;
  options.page_bytes = 64;
  options.mem_budget_bytes = 64 * 4;
  return options;
}

std::string SerializedBytes(const Ltc& sketch) {
  BinaryWriter writer;
  sketch.Serialize(writer);
  return writer.data();
}

// What the sequential oracle knows at the moment the run stopped:
// per tenant, the bytes of the last Put the store ACKED, and — for at
// most one tenant — the bytes of the Put that was in flight.
struct WorkloadResult {
  std::map<uint64_t, std::string> acked;
  std::map<uint64_t, std::string> pending;
  bool completed = false;
};

// The scripted workload: three tenants, three rounds of
// insert-then-Put, an incremental checkpoint after round 0, an
// explicit eviction after round 1, a final checkpoint. Deterministic,
// so every kill index replays the identical op sequence up to the
// kill.
bool RunWorkload(Fs& fs, const std::string& dir, WorkloadResult* out) {
  std::string error;
  auto store = SketchStore::Open(fs, dir, TinyOptions(), &error);
  if (store == nullptr) return false;

  std::map<uint64_t, Ltc> sketches;
  for (uint64_t t = 0; t < 3; ++t) sketches.emplace(t, Ltc(TinyConfig()));

  auto put = [&](uint64_t t) {
    out->pending[t] = SerializedBytes(sketches.at(t));
    if (!store->Put(t, sketches.at(t), &error)) return false;
    out->acked[t] = out->pending[t];
    out->pending.erase(t);
    return true;
  };

  for (int round = 0; round < 3; ++round) {
    for (uint64_t t = 0; t < 3; ++t) {
      for (int i = 0; i < 20; ++i) {
        // +1: ItemId 0 is the reserved empty-cell marker.
        sketches.at(t).Insert(100 * t + (i % (3 + t)) + round + 1);
      }
      if (!put(t)) return false;
    }
    if (round == 0 && !store->CheckpointDirty(&error)) return false;
    if (round == 1 && !store->EvictTenant(0, &error)) return false;
  }
  if (!store->CheckpointDirty(&error)) return false;
  out->completed = true;
  return true;
}

class StoreCrashTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = std::filesystem::path(::testing::TempDir()) /
           (std::string("storecrash_") + info->name());
    ResetDir();
  }

  void TearDown() override { std::filesystem::remove_all(dir_); }

  void ResetDir() {
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }

  // Reopens on the clean filesystem and checks every tenant against
  // the oracle's allowed set, then proves the store is live again.
  void VerifyRecovery(const WorkloadResult& result, uint64_t kill_at,
                      uint64_t seed) {
    SCOPED_TRACE("kill_at=" + std::to_string(kill_at) +
                 " seed=" + std::to_string(seed));
    std::string error;
    auto store = SketchStore::Open(SystemFs(), dir_.string(), TinyOptions(),
                                   &error);
    ASSERT_NE(store, nullptr) << "recovery failed: " << error;

    for (uint64_t t = 0; t < 3; ++t) {
      const auto acked = result.acked.find(t);
      const auto pending = result.pending.find(t);
      if (!store->Contains(t)) {
        // A tenant may be missing only if no Put for it was ever acked
        // (its first WAL record was torn off the tail).
        EXPECT_EQ(acked, result.acked.end())
            << "tenant " << t << " lost an acked Put";
        continue;
      }
      auto got = store->Get(t, &error);
      ASSERT_TRUE(got.has_value()) << "tenant " << t << ": " << error;
      const std::string bytes = SerializedBytes(*got);
      const bool matches_acked =
          acked != result.acked.end() && bytes == acked->second;
      const bool matches_pending =
          pending != result.pending.end() && bytes == pending->second;
      EXPECT_TRUE(matches_acked || matches_pending)
          << "tenant " << t
          << " recovered to neither its pre-Put nor its post-Put image";
    }

    // Liveness: the recovered store takes new writes and checkpoints.
    Ltc fresh(TinyConfig());
    fresh.Insert(999);
    if (store->Contains(0)) {
      auto resumed = store->Get(0, &error);
      ASSERT_TRUE(resumed.has_value()) << error;
      resumed->Insert(999);
      fresh = std::move(*resumed);
    }
    ASSERT_TRUE(store->Put(0, fresh, &error)) << error;
    ASSERT_TRUE(store->CheckpointDirty(&error)) << error;
    auto back = store->Get(0, &error);
    ASSERT_TRUE(back.has_value()) << error;
    EXPECT_EQ(SerializedBytes(*back), SerializedBytes(fresh));
  }

  std::filesystem::path dir_;
};

TEST_F(StoreCrashTest, KillAtEveryOpRecoversBitIdentical) {
  // Rehearsal: learn how many mutating ops a clean run performs.
  uint64_t ops_total = 0;
  {
    FailpointFs fs(SystemFs());
    WorkloadResult rehearsal;
    ASSERT_TRUE(RunWorkload(fs, dir_.string(), &rehearsal));
    ASSERT_TRUE(rehearsal.completed);
    ops_total = fs.mutating_ops();
  }
  // Sanity: the workload must actually exercise WAL appends, page
  // write-backs from eviction pressure, and checkpoint truncation.
  ASSERT_GT(ops_total, 40u) << "workload too small to be a proof";

  for (uint64_t kill_at = 0; kill_at < ops_total; ++kill_at) {
    for (uint64_t seed : {0u, 1u, 7u}) {
      ResetDir();
      FailpointFs fs(SystemFs());
      fs.Arm(FailpointFs::Failure::kCrash, kill_at, seed);
      WorkloadResult result;
      EXPECT_FALSE(RunWorkload(fs, dir_.string(), &result))
          << "kill_at=" << kill_at << " did not stop the run";
      ASSERT_TRUE(fs.crashed());
      VerifyRecovery(result, kill_at, seed);
    }
  }
}

TEST_F(StoreCrashTest, TornWriteAtEveryWriteRecoversBitIdentical) {
  // Same sweep, but every kill tears the crashing write mid-record —
  // the strictest shape a WAL append or page write can be left in.
  uint64_t ops_total = 0;
  {
    FailpointFs fs(SystemFs());
    WorkloadResult rehearsal;
    ASSERT_TRUE(RunWorkload(fs, dir_.string(), &rehearsal));
    ops_total = fs.mutating_ops();
  }

  for (uint64_t kill_at = 0; kill_at < ops_total; ++kill_at) {
    for (uint64_t seed : {3u, 11u}) {
      ResetDir();
      FailpointFs fs(SystemFs());
      fs.Arm(FailpointFs::Failure::kTornWriteCrash, kill_at, seed);
      WorkloadResult result;
      RunWorkload(fs, dir_.string(), &result);
      if (!fs.fired()) continue;  // no write op at/after this index
      VerifyRecovery(result, kill_at, seed);
    }
  }
}

TEST_F(StoreCrashTest, KillDuringReplayIsIdempotent) {
  // Crash recovery itself at every op: build a state whose WAL still
  // holds un-checkpointed deltas, kill the replaying Open at op k, and
  // demand a clean reopen land on the oracle regardless of how far the
  // interrupted replay got. AtomicWriteFile page application plus the
  // LSN test make replay idempotent; this sweep is the proof.
  auto build_state = [&](std::map<uint64_t, std::string>* oracle) {
    ResetDir();
    std::string error;
    auto store = SketchStore::Open(SystemFs(), dir_.string(), TinyOptions(),
                                   &error);
    ASSERT_NE(store, nullptr) << error;
    std::map<uint64_t, Ltc> sketches;
    for (uint64_t t = 0; t < 2; ++t) sketches.emplace(t, Ltc(TinyConfig()));
    for (int round = 0; round < 2; ++round) {
      for (uint64_t t = 0; t < 2; ++t) {
        for (int i = 0; i < 15; ++i) {
          sketches.at(t).Insert(10 * t + i % 4 + 1);
        }
        ASSERT_TRUE(store->Put(t, sketches.at(t), &error)) << error;
      }
      // Write tenant 0's pages back mid-history so replay sees BOTH
      // stale deltas (already on disk) and fresh ones (WAL-only).
      if (round == 0) {
        ASSERT_TRUE(store->EvictTenant(0, &error)) << error;
      }
    }
    // No checkpoint: the WAL is the only durable copy of round 1.
    for (uint64_t t = 0; t < 2; ++t) {
      (*oracle)[t] = SerializedBytes(sketches.at(t));
    }
  };

  uint64_t kill_at = 0;
  while (true) {
    SCOPED_TRACE("replay kill_at=" + std::to_string(kill_at));
    std::map<uint64_t, std::string> oracle;
    build_state(&oracle);
    ASSERT_FALSE(oracle.empty());

    FailpointFs fs(SystemFs());
    fs.Arm(FailpointFs::Failure::kCrash, kill_at, /*seed=*/1);
    std::string error;
    auto interrupted =
        SketchStore::Open(fs, dir_.string(), TinyOptions(), &error);
    const bool fired = fs.fired();
    (void)interrupted;  // may be nullptr; either way we reopen clean

    auto recovered = SketchStore::Open(SystemFs(), dir_.string(),
                                       TinyOptions(), &error);
    ASSERT_NE(recovered, nullptr) << error;
    for (const auto& [tenant, bytes] : oracle) {
      auto got = recovered->Get(tenant, &error);
      ASSERT_TRUE(got.has_value()) << "tenant " << tenant << ": " << error;
      EXPECT_EQ(SerializedBytes(*got), bytes) << "tenant " << tenant;
    }

    if (!fired) break;  // replay finished before reaching op kill_at
    ++kill_at;
  }
  EXPECT_GT(kill_at, 0u) << "replay performed no mutating ops to kill";
}

}  // namespace
}  // namespace store
}  // namespace ltc
