// The LTCQ wire protocol — a small length-prefixed binary protocol for
// querying a live LTC service (docs/SERVING.md has the normative spec).
//
// Framing: every message, in both directions, is
//
//   u32 length (little-endian, payload bytes that follow)
//   payload[length]
//
// A request payload is `u8 opcode` + opcode-specific body; a response
// payload is `u8 status` + (on kOk) the opcode-specific result, or (on
// any error) a length-prefixed human-readable detail string. Multiple
// requests may be pipelined on one connection; responses come back in
// request order.
//
// Item keys travel as length-prefixed byte strings (u16 length), never
// as raw integers: the same TOPK/ESTIMATE_* requests work against a
// numeric trace (keys are decimal text) and an interned token trace
// (keys are the original tokens). A zero-length key is a protocol
// error, answered with kErrBadKey.
//
// Everything here is pure encode/decode over std::string buffers — no
// sockets, no allocation surprises — so the golden-frame and fuzz tests
// (tests/server_test.cc) exercise exactly the bytes the server speaks.

#ifndef LTC_SERVER_PROTOCOL_H_
#define LTC_SERVER_PROTOCOL_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace ltc {
namespace server {

/// Request opcodes (first payload byte of a request).
enum class Opcode : uint8_t {
  kPing = 0x01,                  // body: empty
  kTopK = 0x02,                  // body: u32 k (k >= 1)
  kEstimateSignificance = 0x03,  // body: u16 key_len, key bytes
  kEstimateFrequency = 0x04,     // body: u16 key_len, key bytes
  kEstimatePersistency = 0x05,   // body: u16 key_len, key bytes
  kStats = 0x06,                 // body: empty
  kPushSketch = 0x07,            // body: u64 node_id, u64 epoch_seq,
                                 //       u8 sketch kind, u64 records,
                                 //       u32 payload_len, payload bytes
                                 // (aggregation tier, docs/SERVING.md)
  kDumpTrace = 0x08,             // body: empty; answers the server's
                                 // flight-recorder dump as Chrome
                                 // trace-event JSON (v3)
};

/// Response status (first payload byte of a response). Every error is
/// typed; the server never answers malformed input with silence or a
/// dropped connection (oversized frames excepted — see kErrOversized).
enum class Status : uint8_t {
  kOk = 0x00,
  kErrUnknownOpcode = 0x01,  // opcode byte not in Opcode
  kErrMalformed = 0x02,      // body truncated, trailing bytes, or empty payload
  kErrBadKey = 0x03,         // zero-length key, or key not resolvable
  kErrOversized = 0x04,      // frame length above kMaxFrameBytes; the
                             // connection closes after this response
                             // (the stream can no longer be trusted)
  kErrNoSnapshot = 0x05,     // no snapshot published yet
  kErrBadRequest = 0x06,     // semantically invalid (e.g. k == 0)
  // Aggregation-tier statuses (PUSH_SKETCH, docs/SERVING.md):
  kErrShapeMismatch = 0x07,  // pushed sketch's geometry/weights cannot
                             // merge with the aggregate (ERR_SHAPE_MISMATCH)
  kErrStaleEpoch = 0x08,     // epoch_seq older than the node's last
                             // applied epoch — superseded, do not retry
  kErrBadSketch = 0x09,      // push payload does not deserialize (or an
                             // unsupported sketch kind)
  kErrNotAggregator = 0x0a,  // PUSH_SKETCH at a server without an
                             // aggregator attached
};

/// "ok", "unknown_opcode", ... — stable names used by error-frame
/// details, the ltc_server_errors_total{kind=...} metric and ltc_query.
const char* StatusName(Status status);

/// "ping", "topk", ... — stable names used by the
/// ltc_server_requests_total{op=...} metric and the ltc_query verbs.
const char* OpcodeName(Opcode opcode);

/// Hard ceiling on payload size, both directions. Requests are tiny;
/// responses are bounded by clamping TOPK's k (see kMaxTopK).
constexpr size_t kMaxFrameBytes = 1 << 16;

/// Ceiling for PUSH_SKETCH request frames ONLY (a serialized sketch is
/// as large as its memory budget, far above 64K). An aggregator-mode
/// server raises its parser to this cap for push frames; query frames
/// keep kMaxFrameBytes, so a query-only server is unchanged.
constexpr size_t kMaxPushFrameBytes = 1 << 24;

/// Largest k a TOPK request may ask for (keeps every response under
/// kMaxFrameBytes even with maximal key names).
constexpr uint32_t kMaxTopK = 1024;

/// Largest key length the protocol accepts.
constexpr size_t kMaxKeyBytes = 4096;

/// Protocol version, reported by PING and STATS. v2 adds PUSH_SKETCH,
/// its typed statuses, and the per-node aggregation rows in STATS
/// (absent on v1 responses; the decoder accepts both). v3 adds the
/// optional trace-context request extension and DUMP_TRACE; a request
/// without the extension is byte-identical to its v2 encoding, so v2
/// clients interoperate unchanged.
constexpr uint8_t kProtocolVersion = 3;

/// PUSH_SKETCH sketch kinds. Only single-table sketches are mergeable
/// across nodes today (shards split the memory budget, so a sharded
/// sketch has per-shard geometry no aggregate table can merge with);
/// other kind bytes are answered with kErrBadSketch.
constexpr uint8_t kSketchKindLtc = 0;

// --- Framing ---------------------------------------------------------

/// Wraps a payload in the u32 length prefix.
std::string EncodeFrame(std::string_view payload);

/// Incremental frame splitter for a byte stream. Feed bytes, then pop
/// complete payloads. An oversized declared length poisons the parser
/// (the remaining stream cannot be resynchronized).
///
/// `max_push_frame_bytes` (when above `max_frame_bytes`) raises the cap
/// for frames whose first payload byte is the PUSH_SKETCH opcode ONLY —
/// the aggregator accepts multi-megabyte sketch pushes while query
/// frames stay bounded at 64K. Deciding needs that first byte, so a
/// large declared length parks the parser until it arrives.
class FrameParser {
 public:
  explicit FrameParser(size_t max_frame_bytes = kMaxFrameBytes,
                       size_t max_push_frame_bytes = 0)
      : max_frame_bytes_(max_frame_bytes),
        max_push_frame_bytes_(max_push_frame_bytes > max_frame_bytes
                                  ? max_push_frame_bytes
                                  : max_frame_bytes) {}

  void Feed(std::string_view bytes) { buffer_.append(bytes); }

  /// Extracts the next complete payload, or nullopt when more bytes are
  /// needed (or the parser is poisoned).
  std::optional<std::string> Next();

  /// True once a declared frame length exceeded the maximum.
  bool oversized() const { return oversized_; }

  size_t buffered_bytes() const { return buffer_.size(); }

 private:
  std::string buffer_;
  size_t max_frame_bytes_;
  size_t max_push_frame_bytes_;
  bool oversized_ = false;
};

// --- Trace-context extension (v3) ------------------------------------
//
// Any request MAY carry a trailing trace-context extension:
//
//   u16 magic = kTraceExtMagic, u64 trace_id, u64 span_id
//
// appended after the opcode's base body. It parents the server-side
// span under the caller's span, stitching one trace across processes
// (docs/TELEMETRY.md#tracing--flight-recorder). Detection is exact, not
// heuristic: every opcode's base-body length is derivable from its own
// explicit length fields (the same discipline as the push-opcode
// frame-cap gate — decide from the bytes the protocol already pins), so
// a key or sketch payload that happens to end in the magic can never be
// mis-split. Clients only append it when tracing is active, keeping
// default frames byte-identical to v2 for old servers.

constexpr uint16_t kTraceExtMagic = 0x5443;  // "TC" little-endian
constexpr size_t kTraceExtBytes = 2 + 8 + 8;

struct TraceContextExt {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
};

/// Appends the extension to a complete request payload (opcode + body).
void AppendTraceExt(std::string* request_payload, const TraceContextExt& ext);

/// Splits a request BODY (the bytes after the opcode) into its base
/// body and the optional extension. Returns false only for a tail that
/// occupies exactly the extension's place with the wrong magic
/// (answered kErrMalformed); any other length mismatch passes through
/// untouched for the opcode handler's own typed error.
bool SplitTraceExt(Opcode opcode, std::string_view body,
                   std::string_view* base_body,
                   std::optional<TraceContextExt>* ext);

// --- Requests --------------------------------------------------------

std::string EncodePingRequest();
std::string EncodeTopKRequest(uint32_t k);
std::string EncodeEstimateRequest(Opcode opcode, std::string_view key);
std::string EncodeStatsRequest();
std::string EncodeDumpTraceRequest();

/// One PUSH_SKETCH request: a node's flush-barrier sketch image plus
/// the delivery metadata the aggregator dedups on.
struct PushRequest {
  uint64_t node_id = 0;    // stable identity of the pushing node
  uint64_t epoch_seq = 0;  // 1-based, strictly increasing per node
  uint8_t sketch_kind = kSketchKindLtc;
  uint64_t records = 0;    // stream records applied at the push barrier
  std::string payload;     // serialized sketch (Ltc::Serialize bytes)
};

std::string EncodePushRequest(const PushRequest& push);

/// Decodes a PUSH_SKETCH request BODY (the bytes after the opcode).
/// nullopt = truncated, trailing bytes, or an inconsistent payload
/// length (answered with kErrMalformed by the dispatcher).
std::optional<PushRequest> DecodePushRequestBody(std::string_view body);

// --- Responses -------------------------------------------------------

/// One TOPK row. The key is the item's external name (original token or
/// decimal ID), so clients never see internal ItemIds.
struct TopKEntry {
  std::string key;
  uint64_t frequency = 0;
  uint64_t persistency = 0;
  double significance = 0.0;
};

/// One aggregation-tier node row in STATS: delivery/staleness state of
/// a node that has pushed at least once (docs/SERVING.md).
struct StatsNodeRow {
  uint64_t node_id = 0;
  uint64_t last_epoch = 0;    // newest applied epoch_seq
  uint64_t age_sec = 0;       // seconds since the last applied push
  uint8_t stale = 0;          // 1 once age exceeds the staleness budget
};

/// Service-level counters answered by STATS. `nodes` is empty unless
/// the server aggregates pushed sketches.
struct StatsResult {
  uint64_t snapshot_seq = 0;    // publish sequence of the served image
  uint64_t records = 0;         // stream records applied at its barrier
  uint64_t memory_bytes = 0;    // model memory of the sketch
  uint32_t num_shards = 0;      // 0 = single (unsharded) table
  uint8_t protocol_version = kProtocolVersion;
  std::vector<StatsNodeRow> nodes;  // aggregation tier only
};

std::string EncodeErrorResponse(Status status, std::string_view detail);
std::string EncodePingResponse(uint64_t snapshot_seq, uint64_t records);
std::string EncodeTopKResponse(const std::vector<TopKEntry>& entries);
std::string EncodeDoubleResponse(double value);   // ESTIMATE_SIGNIFICANCE
std::string EncodeU64Response(uint64_t value);    // ESTIMATE_{FREQ,PERS}
std::string EncodeStatsResponse(const StatsResult& stats);
/// PUSH_SKETCH ack: the epoch the ack covers, and whether this delivery
/// mutated the aggregate (applied=0 = a duplicate of an already-applied
/// epoch — still kOk, because retried delivery must be idempotent).
std::string EncodePushResponse(uint64_t epoch_seq, bool applied);
/// DUMP_TRACE: u32 json_len + Chrome trace-event JSON bytes (already
/// truncated by the dispatcher to fit kMaxFrameBytes).
std::string EncodeTraceDumpResponse(std::string_view json);

/// A decoded response, as the client library sees it. Exactly the
/// fields implied by `status` + the request's opcode are meaningful.
struct DecodedResponse {
  Status status = Status::kOk;
  std::string error_detail;          // any error status
  uint64_t snapshot_seq = 0;         // PING
  uint64_t records = 0;              // PING
  std::vector<TopKEntry> topk;       // TOPK
  double value_double = 0.0;         // ESTIMATE_SIGNIFICANCE
  uint64_t value_u64 = 0;            // ESTIMATE_{FREQUENCY,PERSISTENCY}
  StatsResult stats;                 // STATS
  uint64_t push_epoch = 0;           // PUSH_SKETCH
  bool push_applied = false;         // PUSH_SKETCH (false = duplicate)
  std::string trace_json;            // DUMP_TRACE
};

/// Decodes a response payload against the opcode of the request it
/// answers. nullopt = the payload itself is malformed (server bug or
/// corrupted stream; the fuzz tests assert this never happens for
/// server-produced payloads).
std::optional<DecodedResponse> DecodeResponse(Opcode request_opcode,
                                              std::string_view payload);

}  // namespace server
}  // namespace ltc

#endif  // LTC_SERVER_PROTOCOL_H_
