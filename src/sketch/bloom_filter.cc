#include "sketch/bloom_filter.h"

#include <cassert>
#include <cmath>
#include <cstring>
#include <numbers>

#include "common/bob_hash.h"

namespace ltc {

BloomFilter::BloomFilter(size_t num_bits, uint32_t num_hashes, uint64_t seed)
    : num_bits_((num_bits + 63) / 64 * 64),
      num_hashes_(num_hashes),
      seed_(seed),
      bits_(num_bits_ / 64, 0) {
  assert(num_bits >= 64);
  assert(num_hashes >= 1);
}

BloomFilter::Probe BloomFilter::ProbeOf(ItemId item) const {
  uint64_t h = BobHash64(item, seed_);
  // Split into two 32-bit halves for Kirsch–Mitzenmacher double hashing;
  // force h2 odd so probes cycle through all positions.
  return {h & 0xffffffffULL, ((h >> 32) << 1) | 1};
}

void BloomFilter::Add(ItemId item) {
  Probe p = ProbeOf(item);
  for (uint32_t i = 0; i < num_hashes_; ++i) {
    size_t bit = BitIndex(p, i);
    bits_[bit / 64] |= uint64_t{1} << (bit % 64);
  }
}

bool BloomFilter::MayContain(ItemId item) const {
  Probe p = ProbeOf(item);
  for (uint32_t i = 0; i < num_hashes_; ++i) {
    size_t bit = BitIndex(p, i);
    if ((bits_[bit / 64] & (uint64_t{1} << (bit % 64))) == 0) return false;
  }
  return true;
}

bool BloomFilter::TestAndAdd(ItemId item) {
  Probe p = ProbeOf(item);
  bool present = true;
  for (uint32_t i = 0; i < num_hashes_; ++i) {
    size_t bit = BitIndex(p, i);
    uint64_t mask = uint64_t{1} << (bit % 64);
    if ((bits_[bit / 64] & mask) == 0) {
      present = false;
      bits_[bit / 64] |= mask;
    }
  }
  return present;
}

void BloomFilter::Clear() {
  std::memset(bits_.data(), 0, bits_.size() * sizeof(uint64_t));
}

namespace {
constexpr uint32_t kBloomMagic = 0x424c4d31;  // "BLM1"
// v2: explicit format version after the magic (v1 had none).
constexpr uint32_t kBloomFormatVersion = 2;
}  // namespace

void BloomFilter::Serialize(BinaryWriter& writer) const {
  PutVersionedMagic(writer, kBloomMagic, kBloomFormatVersion);
  writer.PutU64(num_bits_);
  writer.PutU32(num_hashes_);
  writer.PutU64(seed_);
  writer.PutBytes(bits_.data(), bits_.size() * sizeof(uint64_t));
}

std::optional<BloomFilter> BloomFilter::Deserialize(BinaryReader& reader) {
  if (!CheckVersionedMagic(reader, kBloomMagic, kBloomFormatVersion)) {
    return std::nullopt;
  }
  uint64_t num_bits = reader.GetU64();
  uint32_t num_hashes = reader.GetU32();
  uint64_t seed = reader.GetU64();
  if (reader.failed() || num_bits < 64 || num_bits % 64 != 0 ||
      num_hashes == 0 || reader.Remaining() < num_bits / 8) {
    return std::nullopt;
  }
  BloomFilter filter(num_bits, num_hashes, seed);
  reader.GetBytes(filter.bits_.data(),
                  filter.bits_.size() * sizeof(uint64_t));
  if (reader.failed()) return std::nullopt;
  return filter;
}

uint32_t BloomFilter::OptimalNumHashes(size_t num_bits, size_t num_items) {
  if (num_items == 0) return 1;
  double k = static_cast<double>(num_bits) / num_items * std::numbers::ln2;
  return std::max<uint32_t>(1, static_cast<uint32_t>(std::lround(k)));
}

double BloomFilter::FalsePositiveRate(size_t num_items) const {
  double exponent = -static_cast<double>(num_hashes_) * num_items / num_bits_;
  return std::pow(1.0 - std::exp(exponent), num_hashes_);
}

}  // namespace ltc
