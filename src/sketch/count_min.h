// Count-Min sketch (Cormode & Muthukrishnan, 2005) and the CU sketch
// (Estan & Varghese's conservative-update variant), the two sketch-based
// frequency baselines of the paper's §II-A.
//
// Both share the same d×w counter matrix layout; CU differs only in the
// update rule (increment only the current minimum counters), which removes
// much of CM's overestimation at the cost of not supporting deletions.

#ifndef LTC_SKETCH_COUNT_MIN_H_
#define LTC_SKETCH_COUNT_MIN_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/serial.h"
#include "stream/stream.h"

namespace ltc {

/// Shared machinery of CM and CU: a depth×width uint32 counter matrix with
/// one Bob hash per row.
class CounterMatrixSketch {
 public:
  /// \param memory_bytes  total counter memory; width = bytes / (4·depth)
  /// \param depth         number of rows (the paper uses 3)
  CounterMatrixSketch(size_t memory_bytes, uint32_t depth, uint64_t seed);

  /// Classic (ε, δ) sizing: width ⌈e/ε⌉, depth ⌈ln(1/δ)⌉ gives
  /// Pr[f̂ − f > εN] < δ. Returns the memory such a sketch needs —
  /// construct with (SizeForGuarantee(ε, δ), DepthForGuarantee(δ)).
  static size_t SizeForGuarantee(double epsilon, double delta);
  static uint32_t DepthForGuarantee(double delta);
  virtual ~CounterMatrixSketch() = default;

  /// Adds `count` occurrences of the item.
  virtual void Insert(ItemId item, uint32_t count = 1) = 0;

  /// Point query: an estimate f̂ with f̂ >= f (one-sided error).
  uint64_t Query(ItemId item) const;

  uint32_t depth() const { return depth_; }
  uint32_t width() const { return width_; }
  size_t MemoryBytes() const {
    return static_cast<size_t>(depth_) * width_ * sizeof(uint32_t);
  }

  /// Resets all counters to zero.
  void Clear();

  /// Checkpointing. The writer receives a type tag (CM vs CU), geometry,
  /// seed and counters; Deserialize reconstructs the right subclass.
  void Serialize(BinaryWriter& writer) const;
  static std::unique_ptr<CounterMatrixSketch> Deserialize(
      BinaryReader& reader);

 protected:
  /// 0 = Count-Min, 1 = CU; used as the serialization type tag.
  virtual uint8_t TypeTag() const = 0;

  /// Restore constructor: exact geometry, bypassing the memory-budget
  /// derivation.
  CounterMatrixSketch(uint32_t depth, uint32_t width, uint64_t seed,
                      std::vector<uint32_t> counters);

  uint32_t Cell(uint32_t row, ItemId item) const;
  uint32_t& At(uint32_t row, uint32_t col) {
    return counters_[static_cast<size_t>(row) * width_ + col];
  }
  uint32_t At(uint32_t row, uint32_t col) const {
    return counters_[static_cast<size_t>(row) * width_ + col];
  }

  uint32_t depth_;
  uint32_t width_;
  uint64_t seed_;
  std::vector<uint32_t> counters_;
};

/// Classic Count-Min: every row's counter is incremented.
class CountMinSketch : public CounterMatrixSketch {
 public:
  CountMinSketch(size_t memory_bytes, uint32_t depth = 3, uint64_t seed = 0)
      : CounterMatrixSketch(memory_bytes, depth, seed) {}

  void Insert(ItemId item, uint32_t count = 1) override;

 protected:
  friend class CounterMatrixSketch;
  CountMinSketch(uint32_t depth, uint32_t width, uint64_t seed,
                 std::vector<uint32_t> counters)
      : CounterMatrixSketch(depth, width, seed, std::move(counters)) {}
  uint8_t TypeTag() const override { return 0; }
};

/// CU sketch: only the rows currently holding the minimum are incremented.
/// Still no underestimation; strictly less overestimation than CM.
class CuSketch : public CounterMatrixSketch {
 public:
  CuSketch(size_t memory_bytes, uint32_t depth = 3, uint64_t seed = 0)
      : CounterMatrixSketch(memory_bytes, depth, seed) {}

  void Insert(ItemId item, uint32_t count = 1) override;

 protected:
  friend class CounterMatrixSketch;
  CuSketch(uint32_t depth, uint32_t width, uint64_t seed,
           std::vector<uint32_t> counters)
      : CounterMatrixSketch(depth, width, seed, std::move(counters)) {}
  uint8_t TypeTag() const override { return 1; }
};

}  // namespace ltc

#endif  // LTC_SKETCH_COUNT_MIN_H_
